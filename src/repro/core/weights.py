"""Axis weights for the weight-based match model (paper Section 3).

``QoM = WL*QoM_L + WP*QoM_P + WH*QoM_H + WC*QoM_C`` -- the four weights
express how much each information axis contributes to the final QoM.
The paper's tuning experiment (Table 2) selected ``label=0.3``,
``properties=0.2``, ``level=0.1``, ``children=0.4``; those are the
defaults here and are exposed as :data:`PAPER_WEIGHTS`.

Beyond the paper's four axes there is an optional fifth one, the
**instance axis** (Section 7's composite-evidence direction): value
profiles computed from actual data (see :mod:`repro.ingest.profile`)
compared per leaf pair.  Its weight defaults to ``0.0`` and every
serialization (:meth:`AxisWeights.as_dict`, :meth:`~AxisWeights.as_tuple`)
omits the axis at weight zero, so configurations that never touch it
produce byte-identical fingerprints, traces and store keys to the
four-axis model.

Weights must be non-negative and sum to 1 so that a total-exact match
always yields ``QoM = 1`` (the paper's normalization invariant).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Sum tolerance when validating weights.
_SUM_TOLERANCE = 1e-9


@dataclass(frozen=True)
class AxisWeights:
    """The axis weights (label, properties, level, children, instance).

    ``instance`` is the optional fifth axis; at its default ``0.0`` the
    model is exactly the paper's four-axis one.
    """

    label: float = 0.3
    properties: float = 0.2
    level: float = 0.1
    children: float = 0.4
    instance: float = 0.0

    def __post_init__(self):
        for axis_name, value in self.as_dict(include_zero_instance=True).items():
            if value < 0:
                raise ValueError(f"weight {axis_name} must be >= 0, got {value}")
        total = self.total
        if abs(total - 1.0) > _SUM_TOLERANCE:
            raise ValueError(
                f"axis weights must sum to 1, got {total} "
                f"({self.as_dict()}); use AxisWeights.normalized(...) to rescale"
            )

    @property
    def total(self) -> float:
        return (
            self.label + self.properties + self.level + self.children
            + self.instance
        )

    @property
    def uses_instance(self) -> bool:
        """Whether the fifth (instance-evidence) axis carries any weight."""
        return self.instance > 0.0

    def as_dict(self, include_zero_instance: bool = False) -> dict:
        """Axis weights by name.

        The ``instance`` key appears only when its weight is nonzero
        (or ``include_zero_instance`` forces it), which keeps dict-based
        serializations -- trace metadata above all -- byte-identical to
        the pre-instance-axis format for four-axis configurations.
        """
        weights = {
            "label": self.label,
            "properties": self.properties,
            "level": self.level,
            "children": self.children,
        }
        if self.instance or include_zero_instance:
            weights["instance"] = self.instance
        return weights

    def as_tuple(self) -> tuple:
        """The weights in canonical order.

        A 4-tuple for four-axis configurations, a 5-tuple once the
        instance axis carries weight -- so config fingerprints (which
        hash this tuple) only change when the fifth axis is actually in
        play.
        """
        base = (self.label, self.properties, self.level, self.children)
        if self.instance:
            return base + (self.instance,)
        return base

    @classmethod
    def normalized(cls, label, properties, level, children,
                   instance=0.0) -> "AxisWeights":
        """Build weights from arbitrary non-negative magnitudes, rescaled
        to sum to 1.

        All-zero (or otherwise non-positive) magnitudes raise a clean
        :class:`ValueError` -- never a ``ZeroDivisionError`` -- so CLI
        and HTTP front ends can surface the message as-is.
        """
        total = label + properties + level + children + instance
        if not total > 0:  # catches 0, negatives and NaN alike
            raise ValueError(
                "at least one axis weight must be positive "
                f"(got label={label}, properties={properties}, "
                f"level={level}, children={children}, instance={instance})"
            )
        return cls(
            label=label / total,
            properties=properties / total,
            level=level / total,
            children=children / total,
            instance=instance / total,
        )

    @classmethod
    def from_sequence(cls, values) -> "AxisWeights":
        """Build from a 4- or 5-sequence in (label, properties, level,
        children[, instance]) order -- the order the paper's Table 2
        uses, with the instance axis appended."""
        values = tuple(values)
        if len(values) not in (4, 5):
            raise ValueError(
                f"need exactly 4 weights (label, properties, level, "
                f"children) or 5 (plus instance), got {len(values)}"
            )
        return cls(*values)

    def __str__(self):
        text = (
            f"L={self.label:g} P={self.properties:g} "
            f"H={self.level:g} C={self.children:g}"
        )
        if self.instance:
            text += f" I={self.instance:g}"
        return text


#: The weights the paper selected (Table 2).
PAPER_WEIGHTS = AxisWeights(label=0.3, properties=0.2, level=0.1, children=0.4)

#: Equal weighting -- Equation 7's unweighted sum, normalized.
UNIFORM_WEIGHTS = AxisWeights(label=0.25, properties=0.25, level=0.25, children=0.25)
