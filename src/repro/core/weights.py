"""Axis weights for the weight-based match model (paper Section 3).

``QoM = WL*QoM_L + WP*QoM_P + WH*QoM_H + WC*QoM_C`` -- the four weights
express how much each information axis contributes to the final QoM.
The paper's tuning experiment (Table 2) selected ``label=0.3``,
``properties=0.2``, ``level=0.1``, ``children=0.4``; those are the
defaults here and are exposed as :data:`PAPER_WEIGHTS`.

Weights must be non-negative and sum to 1 so that a total-exact match
always yields ``QoM = 1`` (the paper's normalization invariant).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Sum tolerance when validating weights.
_SUM_TOLERANCE = 1e-9


@dataclass(frozen=True)
class AxisWeights:
    """The four axis weights (label, properties, level, children)."""

    label: float = 0.3
    properties: float = 0.2
    level: float = 0.1
    children: float = 0.4

    def __post_init__(self):
        for axis_name, value in self.as_dict().items():
            if value < 0:
                raise ValueError(f"weight {axis_name} must be >= 0, got {value}")
        total = self.total
        if abs(total - 1.0) > _SUM_TOLERANCE:
            raise ValueError(
                f"axis weights must sum to 1, got {total} "
                f"({self.as_dict()}); use AxisWeights.normalized(...) to rescale"
            )

    @property
    def total(self) -> float:
        return self.label + self.properties + self.level + self.children

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "properties": self.properties,
            "level": self.level,
            "children": self.children,
        }

    def as_tuple(self) -> tuple:
        return (self.label, self.properties, self.level, self.children)

    @classmethod
    def normalized(cls, label, properties, level, children) -> "AxisWeights":
        """Build weights from arbitrary non-negative magnitudes, rescaled
        to sum to 1."""
        total = label + properties + level + children
        if total <= 0:
            raise ValueError("at least one axis weight must be positive")
        return cls(
            label=label / total,
            properties=properties / total,
            level=level / total,
            children=children / total,
        )

    @classmethod
    def from_sequence(cls, values) -> "AxisWeights":
        """Build from a 4-sequence in (label, properties, level, children)
        order -- the order the paper's Table 2 uses."""
        values = tuple(values)
        if len(values) != 4:
            raise ValueError(
                f"need exactly 4 weights (label, properties, level, "
                f"children), got {len(values)}"
            )
        return cls(*values)

    def __str__(self):
        return (
            f"L={self.label:g} P={self.properties:g} "
            f"H={self.level:g} C={self.children:g}"
        )


#: The weights the paper selected (Table 2).
PAPER_WEIGHTS = AxisWeights(label=0.3, properties=0.2, level=0.1, children=0.4)

#: Equal weighting -- Equation 7's unweighted sum, normalized.
UNIFORM_WEIGHTS = AxisWeights(label=0.25, properties=0.25, level=0.25, children=0.25)
