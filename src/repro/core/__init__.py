"""QMatch core: the paper's primary contribution.

- :mod:`repro.core.taxonomy` -- the XML match taxonomy (Section 2);
- :mod:`repro.core.weights` -- axis weights of the match model
  (Section 3, Table 2);
- :mod:`repro.core.config` -- algorithm configuration, including the
  fidelity switches discussed in DESIGN.md;
- :mod:`repro.core.qmatch` -- the hybrid QMatch algorithm (Section 4).
"""

from repro.core.config import (
    CHILDREN_AGGREGATION_MODES,
    LEAF_LEVEL_MODES,
    QMatchConfig,
)
from repro.core.qmatch import AxisBreakdown, QMatchMatcher
from repro.core.taxonomy import (
    CoverageLevel,
    MatchCategory,
    classify_leaf,
    classify_subtree,
)
from repro.core.weights import PAPER_WEIGHTS, UNIFORM_WEIGHTS, AxisWeights

__all__ = [
    "AxisBreakdown",
    "AxisWeights",
    "CHILDREN_AGGREGATION_MODES",
    "CoverageLevel",
    "LEAF_LEVEL_MODES",
    "MatchCategory",
    "PAPER_WEIGHTS",
    "QMatchConfig",
    "QMatchMatcher",
    "UNIFORM_WEIGHTS",
    "classify_leaf",
    "classify_subtree",
]
