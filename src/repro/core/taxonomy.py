"""The XML match taxonomy (paper Section 2).

Qualitative classification of a match between two XML-Schema nodes:

- **leaf matches** compare the label and properties axes and classify as
  *leaf-exact* (both axes exact) or *leaf-relaxed* (label matches but
  something is relaxed);
- **subtree / tree matches** add the children and level axes and
  classify as *total-exact*, *total-relaxed*, *partial-exact* or
  *partial-relaxed*, combining the coverage of the children axis
  (total / partial) with the strength of the atomic axes and of the
  individual child matches, exactly per Section 2.2:

  - *total exact*: exact on label, properties and level, and every child
    of the source has an exact match among the target's children;
  - *total relaxed*: full child coverage, but one or more relaxed
    matches along an atomic axis or among the children;
  - *partial exact*: exact atomic axes, but only some children match
    (all of those exactly);
  - *partial relaxed*: partial child coverage with relaxation anywhere.

``NO_MATCH`` is the fall-through: a label that fails to match for a
leaf, or zero matching children for an interior node whose label also
fails.
"""

from __future__ import annotations

import enum

from repro.matching.classes import MatchStrength


class CoverageLevel(enum.Enum):
    """Children-axis coverage (paper Section 2.1, "Coverage Match")."""

    TOTAL = "total"
    PARTIAL = "partial"
    NONE = "none"

    def __str__(self):
        return self.value


class MatchCategory(enum.Enum):
    """The taxonomy's qualitative match categories, best first."""

    TOTAL_EXACT = "total-exact"
    TOTAL_RELAXED = "total-relaxed"
    PARTIAL_EXACT = "partial-exact"
    PARTIAL_RELAXED = "partial-relaxed"
    LEAF_EXACT = "leaf-exact"
    LEAF_RELAXED = "leaf-relaxed"
    NO_MATCH = "no-match"

    def __str__(self):
        return self.value

    @property
    def is_match(self):
        return self is not MatchCategory.NO_MATCH

    @property
    def is_exact(self):
        """Categories that count as an *exact* child match when rolling
        the children axis up to the parent (Section 2.2)."""
        return self in (MatchCategory.LEAF_EXACT, MatchCategory.TOTAL_EXACT)


def classify_leaf(label: MatchStrength, properties: MatchStrength) -> MatchCategory:
    """Classify a leaf-to-leaf match from its label and properties axes.

    The paper defines leaf-exact as exact on both axes and leaf-relaxed
    as "either the label or any of the properties" matching relaxed.  A
    label that does not match at all makes the pair a non-match; a fully
    failed properties axis degrades the pair to relaxed rather than
    killing it (labels dominate leaf identity).
    """
    if label is MatchStrength.NONE:
        return MatchCategory.NO_MATCH
    if label is MatchStrength.EXACT and properties is MatchStrength.EXACT:
        return MatchCategory.LEAF_EXACT
    return MatchCategory.LEAF_RELAXED


def classify_subtree(label: MatchStrength, properties: MatchStrength,
                     level: MatchStrength, coverage: CoverageLevel,
                     children: MatchStrength) -> MatchCategory:
    """Classify an interior-node match per Section 2.2.

    ``children`` is the rolled-up strength of the individual child
    matches: EXACT when every matched child pair is itself exact,
    RELAXED otherwise.  ``level`` is EXACT for equal nesting levels and
    NONE otherwise (the paper: a relaxed level match "is synonymous with
    no match"); for category purposes a failed level axis counts as a
    relaxation, mirroring the paper's walk-through where ``Lines`` /
    ``Items`` stay *total relaxed* despite differing levels.

    A label that does not match at all makes the pair a non-match
    regardless of children coverage: every match category in the paper's
    Section 2 walk-through rests on at least a relaxed label match, and
    without that gate structurally-similar-but-unrelated containers
    (an ``authors`` group vs a ``customer`` group, say) would classify
    as matches.
    """
    if label is MatchStrength.NONE:
        return MatchCategory.NO_MATCH
    if coverage is CoverageLevel.NONE:
        # Label evidence without child coverage: weakest match grade.
        return MatchCategory.PARTIAL_RELAXED
    atomic_all_exact = (
        label is MatchStrength.EXACT
        and properties is MatchStrength.EXACT
        and level is MatchStrength.EXACT
    )
    children_all_exact = children is MatchStrength.EXACT
    if coverage is CoverageLevel.TOTAL:
        if atomic_all_exact and children_all_exact:
            return MatchCategory.TOTAL_EXACT
        return MatchCategory.TOTAL_RELAXED
    if atomic_all_exact and children_all_exact:
        return MatchCategory.PARTIAL_EXACT
    return MatchCategory.PARTIAL_RELAXED
