"""QMatch configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.weights import AxisWeights, PAPER_WEIGHTS

#: How the children axis aggregates child-pair QoM values.
#:
#: - ``best_match``: each source child contributes its best-matching
#:   target child when that best QoM clears the threshold (the intended
#:   reading of Eq. 3's "normalized sum"; keeps QoM_C in [0, 1]).
#: - ``all_pairs``: the literal Figure 3 pseudo-code -- every
#:   above-threshold (source child, target child) pair contributes, so a
#:   source child matching several target children counts repeatedly and
#:   QoM_C is clamped at 1.  Kept for fidelity experiments (DESIGN.md).
CHILDREN_AGGREGATION_MODES = ("best_match", "all_pairs")

#: How leaves handle the level axis.
#:
#: - ``constant``: Eq. 2's constant C -- leaves get full credit on the
#:   children and level axes ("exact match by default").
#: - ``computed``: Section 2.1's behaviour -- the level axis of a leaf
#:   pair is compared like any other node's.
LEAF_LEVEL_MODES = ("constant", "computed")


@dataclass(frozen=True)
class QMatchConfig:
    """Everything tunable about the QMatch algorithm.

    Attributes
    ----------
    weights:
        The axis weights of the match model (defaults to the paper's
        Table 2 values).
    threshold:
        The child-match threshold of Figure 3: a child pair only counts
        toward the children axis when its QoM reaches this value.
    children_aggregation / leaf_level_mode:
        Fidelity switches documented above and in DESIGN.md.
    record_categories:
        Whether to compute and keep the qualitative taxonomy category of
        every pair (cheap for paper-sized schemas; can be disabled for
        the thousands-of-nodes protein runs).
    """

    weights: AxisWeights = PAPER_WEIGHTS
    threshold: float = 0.5
    children_aggregation: str = "best_match"
    leaf_level_mode: str = "constant"
    record_categories: bool = True
    #: Secondary gate for the children axis: a child pair with *no*
    #: label evidence still counts as matched when its properties axis
    #: scores at least this high (identical type, order, occurrence and
    #: kind).  This is what lets structurally-identical-but-
    #: linguistically-disjoint schemas (the paper's Figures 7-9) keep a
    #: strong children axis while arbitrary unrelated leaves -- which
    #: Eq. 2's constant would otherwise push over the threshold -- do
    #: not.
    structural_child_gate: float = 0.95
    #: Use ``xs:annotation/xs:documentation`` text as secondary label
    #: evidence (Cupid consults schema comments the same way).  When two
    #: nodes both carry documentation, its linguistic similarity can
    #: rescue a label axis the names alone would fail, discounted by
    #: ``documentation_discount``.
    use_documentation: bool = False
    documentation_discount: float = 0.9

    def __post_init__(self):
        # Coerce / validate the weights eagerly so a bad model surfaces
        # here as a clear ValueError, not deep inside a match run.  A
        # 4-sequence is accepted for convenience and converted; anything
        # weight-shaped is re-validated through the AxisWeights
        # constructor (non-negative, summing to ~1).
        weights = self.weights
        if not isinstance(weights, AxisWeights):
            try:
                weights = AxisWeights.from_sequence(weights)
            except TypeError:
                try:
                    weights = AxisWeights(
                        label=weights.label,
                        properties=weights.properties,
                        level=weights.level,
                        children=weights.children,
                        instance=getattr(weights, "instance", 0.0),
                    )
                except AttributeError:
                    raise ValueError(
                        f"weights must be an AxisWeights or a 4/5-sequence "
                        f"(label, properties, level, children[, instance]), "
                        f"got {self.weights!r}"
                    ) from None
            object.__setattr__(self, "weights", weights)
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {self.threshold}")
        if not 0.0 <= self.structural_child_gate <= 1.0:
            raise ValueError(
                "structural_child_gate must be in [0, 1], "
                f"got {self.structural_child_gate}"
            )
        if self.children_aggregation not in CHILDREN_AGGREGATION_MODES:
            raise ValueError(
                f"children_aggregation must be one of "
                f"{CHILDREN_AGGREGATION_MODES}, got {self.children_aggregation!r}"
            )
        if self.leaf_level_mode not in LEAF_LEVEL_MODES:
            raise ValueError(
                f"leaf_level_mode must be one of {LEAF_LEVEL_MODES}, "
                f"got {self.leaf_level_mode!r}"
            )
