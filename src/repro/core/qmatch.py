"""The QMatch hybrid algorithm (paper Section 4, Figure 3).

QMatch computes a quality-of-match (QoM) value for every (source node,
target node) pair by combining four axes::

    QoM(s, t) = WL*QoM_L + WP*QoM_P + WH*QoM_H + WC*QoM_C

- ``QoM_L`` comes from the linguistic matcher (the label axis);
- ``QoM_P`` from the property matcher (type, order, occurrences, kind);
- ``QoM_H`` is 1 when the nodes sit at the same nesting level, else 0;
- ``QoM_C`` is the children axis: ``(Rw + Rs) / 2`` where ``Rw`` is the
  normalized sum of the above-threshold child-pair QoMs and ``Rs`` the
  fraction of source children with a match (Eqs. 3-5).

An optional fifth term, ``WI*QoM_I``, mixes in **instance evidence**
(value profiles attached by :mod:`repro.ingest.profile`) when the
configured ``instance`` weight is nonzero; at the default weight of
zero the model is exactly the paper's and the axis is never evaluated.

The paper's Figure 3 presents this as a recursion from the roots; here
it is computed as an equivalent bottom-up dynamic program over the
postorder x postorder pair grid, so *every* subtree pair gets a QoM (the
paper's tree-match step "match the sub-tree rooted at PurchaseInfo with
all sub-trees in the Purchase Order schema" falls out for free) and the
total cost is the O(n*m) the paper claims.

Alongside the numeric matrix, the matcher classifies every pair with the
Section 2 taxonomy (leaf-exact ... partial-relaxed), which is reported
per correspondence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import QMatchConfig
from repro.core.taxonomy import (
    CoverageLevel,
    MatchCategory,
    classify_leaf,
    classify_subtree,
)
from repro.linguistic.matcher import LinguisticMatcher
from repro.matching.base import Matcher
from repro.matching.classes import MatchStrength
from repro.matching.result import ScoreMatrix
from repro.properties.matcher import PropertyMatcher
from repro.xsd.model import SchemaNode, SchemaTree


@dataclass(frozen=True)
class AxisBreakdown:
    """Per-axis detail of one pair's QoM -- what ``explain`` returns."""

    source_path: str
    target_path: str
    qom: float
    category: MatchCategory
    label_score: float
    label_strength: MatchStrength
    label_mechanism: str
    properties_score: float
    properties_strength: MatchStrength
    level_score: float
    children_score: float
    coverage: CoverageLevel
    matched_children: int
    total_children: int
    #: Instance-axis (value-profile) similarity; ``None`` when the
    #: configured ``instance`` weight is zero and the axis never ran.
    instance_score: Optional[float] = None

    def __str__(self):
        lines = [
            f"{self.source_path} <-> {self.target_path}",
            f"  QoM      : {self.qom:.4f}  [{self.category}]",
            f"  label    : {self.label_score:.3f} ({self.label_strength}, "
            f"{self.label_mechanism})",
            f"  props    : {self.properties_score:.3f} ({self.properties_strength})",
            f"  level    : {self.level_score:.1f}",
            f"  children : {self.children_score:.3f} ({self.coverage}, "
            f"{self.matched_children}/{self.total_children} matched)",
        ]
        if self.instance_score is not None:
            lines.append(f"  instance : {self.instance_score:.3f}")
        return "\n".join(lines)


class QMatchMatcher(Matcher):
    """The hybrid QMatch algorithm."""

    name = "qmatch"
    #: QMatch is a tree algorithm: correspondence extraction uses the
    #: parent-context-aware strategy by default.
    default_strategy = "hierarchical"

    def __init__(self, config=None, linguistic=None, property_matcher=None,
                 thesaurus=None):
        """Create a QMatch instance.

        ``linguistic`` / ``property_matcher`` default to fresh instances;
        ``thesaurus`` is a convenience forwarded to the default
        linguistic matcher (ignored when ``linguistic`` is given).
        """
        self.config = config or QMatchConfig()
        self.linguistic = linguistic or LinguisticMatcher(thesaurus=thesaurus)
        self.property_matcher = property_matcher or PropertyMatcher()

    # ------------------------------------------------------------------
    # Matcher protocol
    # ------------------------------------------------------------------

    def config_signature(self) -> dict:
        """Expose every score-shaping knob of :class:`QMatchConfig`."""
        config = self.config
        return {
            "algorithm": self.name,
            "weights": config.weights.as_tuple(),
            "child_threshold": config.threshold,
            "children_aggregation": config.children_aggregation,
            "leaf_level_mode": config.leaf_level_mode,
            "structural_child_gate": config.structural_child_gate,
            "use_documentation": config.use_documentation,
            "documentation_discount": config.documentation_discount,
        }

    def make_context(self, source, target, stats=None, cache_enabled=True,
                     tracer=None):
        """Inject this matcher's configured services into the context."""
        from repro.engine.context import MatchContext

        return MatchContext(
            source, target,
            linguistic=self.linguistic,
            property_matcher=self.property_matcher,
            stats=stats,
            cache_enabled=cache_enabled,
            tracer=tracer,
        )

    def match_context(self, ctx) -> ScoreMatrix:
        matrix = ScoreMatrix(ctx.source, ctx.target)
        categories: Optional[dict] = (
            {} if self.config.record_categories else None
        )
        tracer = ctx.tracer
        if tracer.enabled:
            tracer.begin_run(
                algorithm=self.name,
                source=ctx.source.name,
                target=ctx.target.name,
                weights=self.config.weights.as_dict(),
                threshold=self.config.threshold,
                config=self.config_signature(),
            )
        t_nodes = ctx.target_postorder
        for s_node in ctx.source_postorder:
            for t_node in t_nodes:
                # Zero-cost when disabled: this is the single per-pair
                # trace branch the observability layer is allowed.
                if tracer.enabled:
                    qom, category = self._traced_pair(
                        s_node, t_node, matrix, categories, ctx, tracer
                    )
                else:
                    qom, category = self._pair_qom(
                        s_node, t_node, matrix, categories, ctx
                    )
                matrix.set(s_node, t_node, qom)
                if categories is not None:
                    categories[(s_node.path, t_node.path)] = category.value
        matrix.categories = categories
        ctx.stats.count("qmatch.pairs", len(matrix))
        return matrix

    def _traced_pair(self, s_node, t_node, matrix, categories, ctx, tracer):
        """Score one pair with full span recording (the traced path).

        Cache provenance is probed *before* the comparisons run (a
        memoized lookup afterwards would always report a hit).
        """
        detail = {
            "label_cache": (
                "hit" if ctx.label_cached(s_node.name, t_node.name)
                else ("miss" if ctx.cache_enabled else "off")
            ),
            "property_cache": (
                "hit" if ctx.property_cached(s_node, t_node)
                else ("miss" if ctx.cache_enabled else "off")
            ),
        }
        if self.config.weights.uses_instance:
            detail["instance_cache"] = (
                "hit" if ctx.instance_cached(s_node, t_node)
                else ("miss" if ctx.cache_enabled else "off")
            )
        qom, category = self._pair_qom(
            s_node, t_node, matrix, categories, ctx, trace_out=detail
        )
        weights = self.config.weights
        label = detail["label"]
        props = detail["properties"]
        axes = {
            "label": {
                "score": label.score,
                "weight": weights.label,
                "contribution": weights.label * label.score,
                "strength": str(label.strength),
                "mechanism": label.mechanism,
                "cache": detail["label_cache"],
            },
            "properties": {
                "score": props.score,
                "weight": weights.properties,
                "contribution": weights.properties * props.score,
                "strength": str(props.strength),
                "cache": detail["property_cache"],
            },
            "level": {
                "score": detail["level_score"],
                "weight": weights.level,
                "contribution": weights.level * detail["level_score"],
            },
            "children": {
                "score": detail["children_score"],
                "weight": detail["children_weight"],
                "contribution": (
                    detail["children_weight"] * detail["children_score"]
                ),
                "coverage": str(detail["coverage"]),
                "matched": detail["matched_children"],
                "total": detail["total_children"],
            },
        }
        if weights.uses_instance:
            # Only present at nonzero instance weight, so four-axis
            # traces stay byte-identical to the pre-instance format.
            axes["instance"] = {
                "score": detail["instance_score"],
                "weight": weights.instance,
                "contribution": weights.instance * detail["instance_score"],
                "cache": detail["instance_cache"],
            }
        children_spans = []
        for source_path, target_path in detail["matched_pairs"] or ():
            span_id = tracer.span_id(source_path, target_path)
            if span_id is not None:
                children_spans.append(span_id)
        tracer.record_pair(
            s_node.path, t_node.path,
            qom=qom,
            category=str(category),
            threshold=self.config.threshold,
            accepted=qom >= self.config.threshold,
            axes=axes,
            children_spans=children_spans,
        )
        return qom, category

    def categories(self, matrix: ScoreMatrix):
        return getattr(matrix, "categories", None)

    # ------------------------------------------------------------------
    # The QoM model
    # ------------------------------------------------------------------

    def _pair_qom(self, s_node: SchemaNode, t_node: SchemaNode,
                  matrix: ScoreMatrix, categories, ctx=None,
                  trace_out: Optional[dict] = None):
        """QoM and taxonomy category of one pair.

        Child pairs are guaranteed to be in ``matrix`` already because
        both trees are iterated in postorder.  ``ctx`` carries the
        engine's memoized label/property comparisons; legacy callers may
        omit it and a throwaway context is built.  ``trace_out`` (only
        passed on the traced path) receives the per-axis evidence the
        span recorder serializes; the numeric result is identical with
        or without it.
        """
        if ctx is None:
            ctx = self.make_context(matrix.source, matrix.target)
        weights = self.config.weights
        label = self._label_evidence(s_node, t_node, ctx)
        props = ctx.property_comparison(s_node, t_node)
        level_strength = (
            MatchStrength.EXACT if s_node.level == t_node.level
            else MatchStrength.NONE
        )
        level_score = 1.0 if level_strength is MatchStrength.EXACT else 0.0
        matched_pairs = [] if trace_out is not None else None

        if s_node.is_leaf and t_node.is_leaf:
            if self.config.leaf_level_mode == "constant":
                # Eq. 2: children and level exact by default for leaves.
                effective_level = 1.0
            else:
                effective_level = level_score
            children_score, children_weight = 1.0, weights.children
            coverage, matched, total = CoverageLevel.TOTAL, 0, 0
            category = classify_leaf(label.strength, props.strength)
        elif s_node.is_leaf != t_node.is_leaf:
            # Leaf vs interior: no children-axis credit (footnote 1 of
            # the paper -- comparable by altering the level axis).
            effective_level = level_score
            children_score, children_weight = 0.0, 0.0
            coverage, matched = CoverageLevel.NONE, 0
            total = len(s_node.children)
            category = classify_subtree(
                label.strength, props.strength, level_strength,
                CoverageLevel.NONE, MatchStrength.NONE,
            )
        else:
            effective_level = level_score
            children_score, coverage, matched, children_strength = (
                self._children_axis(
                    s_node, t_node, matrix, categories, ctx,
                    matched_pairs=matched_pairs,
                )
            )
            children_weight = weights.children
            total = len(s_node.children)
            category = classify_subtree(
                label.strength, props.strength, level_strength,
                coverage, children_strength,
            )
        # One formula for all three shapes: the leaf case fixes the
        # children axis at 1.0, the mixed case zeroes its weight, so the
        # sum is bit-identical to the per-branch formulas it replaces.
        qom = (
            weights.label * label.score
            + weights.properties * props.score
            + weights.level * effective_level
            + children_weight * children_score
        )
        instance_score = None
        if weights.uses_instance:
            # The fifth axis only ever runs at nonzero weight: the
            # zero-weight model touches no profile, fills no memo and
            # adds not a single float to the sum.
            instance_score = ctx.instance_score(s_node, t_node)
            qom += weights.instance * instance_score
        if trace_out is not None:
            trace_out.update(
                label=label,
                properties=props,
                level_score=effective_level,
                children_score=children_score,
                children_weight=children_weight,
                coverage=coverage,
                matched_children=matched,
                total_children=total,
                matched_pairs=matched_pairs,
                instance_score=instance_score,
            )
        return qom, category

    def _label_evidence(self, s_node, t_node, ctx):
        """Label-axis evidence: names, optionally backed by documentation.

        With ``use_documentation`` on and both nodes carrying
        ``xs:documentation`` text, the documentation's linguistic
        similarity (discounted) can lift a label axis the names alone
        would fail -- it never lowers the name-based score, and
        doc-mediated evidence is at best relaxed.
        """
        label = ctx.label_comparison(s_node.name, t_node.name)
        if not self.config.use_documentation:
            return label
        s_doc = s_node.properties.get("documentation")
        t_doc = t_node.properties.get("documentation")
        if not s_doc or not t_doc:
            return label
        doc = ctx.label_comparison(s_doc, t_doc)
        doc_score = doc.score * self.config.documentation_discount
        if doc_score <= label.score:
            return label
        from repro.linguistic.matcher import LabelComparison

        strength = label.strength
        if strength is MatchStrength.NONE and doc.strength.is_match:
            strength = MatchStrength.RELAXED
        return LabelComparison(doc_score, strength, "documentation")

    def _children_axis(self, s_node, t_node, matrix, categories, ctx,
                       matched_pairs=None):
        """Eqs. 3-5: (QoM_C, coverage, matched count, children strength).

        ``matched_pairs`` (traced path only) collects the
        ``(source_path, target_path)`` child pairs that counted toward
        the axis, so spans can link to their contributing child spans.

        A child pair only counts when it is a genuine match: its label
        axis matched at least relaxed, *or* its properties axis agrees
        near-perfectly (the ``structural_child_gate`` -- what keeps the
        Figure 7-9 structurally-identical case strong).  Without any
        gate, Eq. 2's constant (WH + WC for every leaf pair) would push
        arbitrary unrelated leaves over any threshold <= 0.5 and the
        coverage measure would stop discriminating.

        In ``best_match`` mode the candidate set for a source child also
        includes the target node *itself*: the paper's tree-match
        walk-through matches ``PurchaseInfo`` (a child of ``PO``) against
        ``Purchase Order`` (the root), absorbing one level of nesting
        difference.
        """
        threshold = self.config.threshold
        s_children = s_node.children
        t_children = t_node.children
        total = len(s_children)

        matched = 0
        qom_sum = 0.0
        children_all_exact = True

        def is_child_match(s_child, t_child):
            label = ctx.label_comparison(s_child.name, t_child.name)
            if label.strength is not MatchStrength.NONE:
                return True
            props = ctx.property_comparison(s_child, t_child)
            return props.score >= self.config.structural_child_gate

        if self.config.children_aggregation == "best_match":
            candidates = list(t_children) + [t_node]
            for s_child in s_children:
                best_qom = 0.0
                best_target = None
                for t_child in candidates:
                    if t_child is t_node and s_child.is_leaf:
                        # Absorption only makes sense for subtrees.
                        continue
                    child_qom = matrix.get(s_child, t_child)
                    if child_qom > best_qom and is_child_match(s_child, t_child):
                        best_qom = child_qom
                        best_target = t_child
                if best_qom >= threshold:
                    matched += 1
                    qom_sum += best_qom
                    if matched_pairs is not None and best_target is not None:
                        matched_pairs.append(
                            (s_child.path, best_target.path)
                        )
                    if categories is not None and best_target is not None:
                        child_category = categories.get(
                            (s_child.path, best_target.path)
                        )
                        if child_category is None or not MatchCategory(
                            child_category
                        ).is_exact:
                            children_all_exact = False
                    elif best_qom < 1.0:
                        children_all_exact = False
                else:
                    children_all_exact = False
        else:  # all_pairs -- the literal Figure 3 pseudo-code.
            matched_sources = set()
            for s_child in s_children:
                for t_child in t_children:
                    child_qom = matrix.get(s_child, t_child)
                    if child_qom >= threshold and is_child_match(
                        s_child, t_child
                    ):
                        qom_sum += child_qom
                        if matched_pairs is not None:
                            matched_pairs.append(
                                (s_child.path, t_child.path)
                            )
                        matched_sources.add(id(s_child))
                        if child_qom < 1.0:
                            children_all_exact = False
            matched = len(matched_sources)
            if matched < total:
                children_all_exact = False

        subtree_weight = qom_sum / total  # Rw, Eq. 3
        cardinality_ratio = matched / total  # Rs, Eq. 4
        children_score = (subtree_weight + cardinality_ratio) / 2  # Eq. 5
        children_score = min(children_score, 1.0)

        if matched == total:
            coverage = CoverageLevel.TOTAL
        elif matched > 0:
            coverage = CoverageLevel.PARTIAL
        else:
            coverage = CoverageLevel.NONE
        children_strength = (
            MatchStrength.EXACT
            if matched and children_all_exact
            else (MatchStrength.RELAXED if matched else MatchStrength.NONE)
        )
        return children_score, coverage, matched, children_strength

    # ------------------------------------------------------------------
    # Explanation
    # ------------------------------------------------------------------

    def explain(self, source: SchemaTree, target: SchemaTree,
                source_path: str, target_path: str,
                matrix: Optional[ScoreMatrix] = None,
                context=None) -> AxisBreakdown:
        """Full per-axis breakdown for one pair.

        When ``matrix`` is omitted the matcher recomputes it (fine for
        paper-sized schemas; pass the matrix from a previous
        :meth:`match` for large ones).  Passing the ``context`` of that
        run as well reuses its memoized per-pair comparisons instead of
        rebuilding them -- the service layer does this when attaching
        axis evidence to every correspondence of a result.
        """
        s_node = source.find(source_path)
        t_node = target.find(target_path)
        if s_node is None:
            raise KeyError(f"no node {source_path!r} in source schema")
        if t_node is None:
            raise KeyError(f"no node {target_path!r} in target schema")
        ctx = context if context is not None else self.make_context(source, target)
        if matrix is None:
            matrix = self.match_context(ctx)
        categories = getattr(matrix, "categories", None)

        label = self._label_evidence(s_node, t_node, ctx)
        props = ctx.property_comparison(s_node, t_node)
        level_score = 1.0 if s_node.level == t_node.level else 0.0
        if s_node.is_leaf and t_node.is_leaf:
            children_score, coverage = 1.0, CoverageLevel.TOTAL
            matched, total = 0, 0
            if self.config.leaf_level_mode == "constant":
                level_score = 1.0
        elif s_node.is_leaf != t_node.is_leaf:
            children_score, coverage = 0.0, CoverageLevel.NONE
            matched, total = 0, len(s_node.children)
        else:
            children_score, coverage, matched, _ = self._children_axis(
                s_node, t_node, matrix, categories, ctx
            )
            total = len(s_node.children)
        qom = matrix.get(s_node, t_node)
        category_value = (
            categories.get((s_node.path, t_node.path)) if categories else None
        )
        if category_value is not None:
            category = MatchCategory(category_value)
        else:
            _, category = self._pair_qom(s_node, t_node, matrix, None, ctx)
        instance_score = (
            ctx.instance_score(s_node, t_node)
            if self.config.weights.uses_instance else None
        )
        return AxisBreakdown(
            source_path=s_node.path,
            target_path=t_node.path,
            qom=qom,
            category=category,
            label_score=label.score,
            label_strength=label.strength,
            label_mechanism=label.mechanism,
            properties_score=props.score,
            properties_strength=props.strength,
            level_score=level_score,
            children_score=children_score,
            coverage=coverage,
            matched_children=matched,
            total_children=total,
            instance_score=instance_score,
        )
