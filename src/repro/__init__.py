"""QMatch: a hybrid match algorithm for XML Schemas (ICDE 2005 reproduction).

Quickstart::

    from repro import match, parse_xsd_file

    source = parse_xsd_file("a.xsd")
    target = parse_xsd_file("b.xsd")
    result = match(source, target)           # hybrid QMatch
    print(result.tree_qom)                   # overall schema QoM
    for correspondence in result.correspondences:
        print(correspondence)                 # node pairs + category

Main entry points:

- :func:`match` / :func:`make_matcher` -- run any registered algorithm
  by name (``"qmatch"``, ``"linguistic"``, ``"structural"``, the
  related-work baselines, ... -- see :data:`ALGORITHMS`); names resolve
  through :data:`repro.engine.DEFAULT_REGISTRY`;
- :class:`QMatchMatcher`, :class:`QMatchConfig`, :class:`AxisWeights` --
  the configurable hybrid algorithm;
- :func:`parse_xsd` / :func:`parse_xsd_file` and the builder helpers --
  getting schema trees in;
- :mod:`repro.datasets` -- the paper's evaluation schemas;
- :mod:`repro.evaluation` -- precision / recall / overall harness;
- :mod:`repro.constraints` -- the declarative match-constraint DSL:
  parse a JSON/YAML criteria file (:func:`load_constraint_file`),
  evaluate it against a result (:func:`evaluate_constraint` over
  :class:`MatchEvidence`) and gate on the verdict (``qmatch check`` /
  ``--require``);
- :mod:`repro.obs` -- observability: per-pair decision traces
  (:class:`TraceRecorder`, ``qmatch explain``), the Prometheus-style
  :class:`MetricsRegistry`, structured :class:`EventLogger` logs.
"""

from repro.composite.combine import CompositeMatcher
from repro.constraints import (
    Constraint,
    ConstraintError,
    ConstraintReport,
    MatchEvidence,
    evaluate_constraint,
    load_constraint_file,
    parse_constraint,
)
from repro.core.config import QMatchConfig
from repro.engine.context import MatchContext
from repro.engine.registry import (
    DEFAULT_REGISTRY,
    MatcherRegistry,
    MatcherSpec,
    register_default_matchers,
)
from repro.engine.stats import EngineStats
from repro.cupid.matcher import CupidConfig, CupidMatcher
from repro.core.qmatch import AxisBreakdown, QMatchMatcher
from repro.core.taxonomy import CoverageLevel, MatchCategory
from repro.core.weights import PAPER_WEIGHTS, AxisWeights
from repro.linguistic.matcher import LinguisticConfig, LinguisticMatcher
from repro.linguistic.thesaurus import Thesaurus
from repro.matching.base import Matcher
from repro.matching.result import Correspondence, MatchResult, ScoreMatrix
from repro.obs.log import NULL_LOGGER, EventLogger
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Trace, TraceRecorder, load_trace
from repro.matching.selection import DEFAULT_THRESHOLD
from repro.structural.matcher import StructuralConfig, StructuralMatcher
from repro.structural.flooding import SimilarityFloodingMatcher
from repro.structural.tree_edit import TreeEditMatcher, tree_edit_distance
from repro.xsd.builder import TreeBuilder, attribute, element, tree
from repro.xsd.dtd import parse_dtd, parse_dtd_file
from repro.xsd.model import NodeKind, SchemaNode, SchemaTree
from repro.xsd.parser import parse_xsd, parse_xsd_file
from repro.xsd.stats import SchemaStats, schema_stats
from repro.xsd.serializer import to_compact_text, to_xsd

__version__ = "1.0.0"

#: Registered algorithm names for :func:`make_matcher` / the CLI.
ALGORITHMS = DEFAULT_REGISTRY.names()


def make_matcher(algorithm: str = "qmatch", **kwargs) -> Matcher:
    """Instantiate a matcher by algorithm name.

    Resolution goes through :data:`repro.engine.DEFAULT_REGISTRY`;
    ``kwargs`` are forwarded to the registered factory (e.g.
    ``config=QMatchConfig(...)`` or ``thesaurus=...``).
    """
    return DEFAULT_REGISTRY.create(algorithm, **kwargs)


def match(source: SchemaTree, target: SchemaTree, algorithm: str = "qmatch",
          threshold: float = DEFAULT_THRESHOLD, strategy: str = None,
          **kwargs) -> MatchResult:
    """Match two schema trees end to end.

    The one-call API: builds the requested matcher, scores every node
    pair, selects one-to-one correspondences above ``threshold`` and
    returns the full :class:`MatchResult`.
    """
    return make_matcher(algorithm, **kwargs).match(
        source, target, threshold=threshold, strategy=strategy
    )


__all__ = [
    "ALGORITHMS",
    "AxisBreakdown",
    "CompositeMatcher",
    "Constraint",
    "ConstraintError",
    "ConstraintReport",
    "CupidConfig",
    "CupidMatcher",
    "DEFAULT_REGISTRY",
    "EngineStats",
    "MatchContext",
    "MatcherRegistry",
    "MatcherSpec",
    "SimilarityFloodingMatcher",
    "register_default_matchers",
    "AxisWeights",
    "Correspondence",
    "CoverageLevel",
    "DEFAULT_THRESHOLD",
    "LinguisticConfig",
    "LinguisticMatcher",
    "MatchCategory",
    "MatchEvidence",
    "EventLogger",
    "MatchResult",
    "Matcher",
    "MetricsRegistry",
    "NULL_LOGGER",
    "NULL_TRACER",
    "NodeKind",
    "PAPER_WEIGHTS",
    "QMatchConfig",
    "QMatchMatcher",
    "SchemaNode",
    "SchemaTree",
    "ScoreMatrix",
    "StructuralConfig",
    "StructuralMatcher",
    "Thesaurus",
    "Trace",
    "TraceRecorder",
    "TreeBuilder",
    "TreeEditMatcher",
    "attribute",
    "element",
    "SchemaStats",
    "evaluate_constraint",
    "load_constraint_file",
    "make_matcher",
    "match",
    "parse_constraint",
    "parse_dtd",
    "parse_dtd_file",
    "parse_xsd",
    "parse_xsd_file",
    "load_trace",
    "schema_stats",
    "to_compact_text",
    "to_xsd",
    "tree",
    "tree_edit_distance",
]
