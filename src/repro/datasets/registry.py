"""Dataset registry: every paper schema and match task by name.

The benchmarks and the CLI address datasets through this module:

- :func:`load_schema` -- one schema by its Table 1 name;
- :func:`table1_schemas` -- all eight, in the paper's column order;
- :func:`domain_tasks` -- the four evaluation pairs of Figure 5
  (PO, Book, DCMD, Protein) as ready :class:`MatchTask` objects;
- :func:`figure6_tasks` -- the three pairs Figure 6 plots (the protein
  pair is excluded there, as in the paper);
- :func:`extreme_task` -- the Library/Human pair of Figures 7-9.

Protein-pair construction costs a few seconds (3753-element generation),
so tasks are built lazily and cached.
"""

from __future__ import annotations

import functools

from repro.datasets import bibliographic, dcmd, extreme, inventory, po, protein
from repro.evaluation.harness import MatchTask

#: Table 1 column order.
TABLE1_NAMES = (
    "PO1", "PO2", "Article", "Book", "DCMDItem", "DCMDOrd", "PIR", "PDB",
)

#: Paper-reported Table 1 characteristics: name -> (elements, max depth).
TABLE1_PAPER = {
    "PO1": (10, 3),
    "PO2": (9, 3),
    "Article": (18, 3),
    "Book": (6, 2),
    "DCMDItem": (38, 2),
    "DCMDOrd": (53, 3),
    "PIR": (231, 6),
    "PDB": (3753, 7),
}

_FACTORIES = {
    "PO1": po.po1,
    "PO2": po.po2,
    "Article": bibliographic.article,
    "Book": bibliographic.book,
    "DCMDItem": dcmd.dcmd_item,
    "DCMDOrd": dcmd.dcmd_order,
    "PIR": protein.pir,
    "PDB": protein.pdb,
    "Library": extreme.library,
    "Human": extreme.human,
    "WarehouseInventory": inventory.warehouse,
    "StoreInventory": inventory.store,
}


def schema_names() -> tuple:
    """All registered schema names."""
    return tuple(_FACTORIES)


def load_schema(name: str):
    """Build one registered schema by name (fresh instance)."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown schema {name!r}; available: {sorted(_FACTORIES)}"
        ) from None
    return factory()


def table1_schemas() -> list:
    """The eight Table 1 schemas, in the paper's order."""
    return [load_schema(name) for name in TABLE1_NAMES]


@functools.lru_cache(maxsize=None)
def _protein_pair():
    source = protein.pir()
    target, gold = protein.pdb_with_gold()
    return source, target, gold


@functools.lru_cache(maxsize=None)
def _task(name: str) -> MatchTask:
    if name == "PO":
        return MatchTask("PO", po.po1(), po.po2(), po.gold_po())
    if name == "Book":
        return MatchTask(
            "Book", bibliographic.article(), bibliographic.book(),
            bibliographic.gold_article_book(),
        )
    if name == "DCMD":
        return MatchTask(
            "DCMD", dcmd.dcmd_item(), dcmd.dcmd_order(), dcmd.gold_dcmd()
        )
    if name == "Protein":
        source, target, gold = _protein_pair()
        return MatchTask("Protein", source, target, gold)
    if name == "Inventory":
        return MatchTask(
            "Inventory", inventory.warehouse(), inventory.store(),
            inventory.gold_inventory(),
        )
    if name == "Extreme":
        return MatchTask("Extreme", extreme.library(), extreme.human(), None)
    raise KeyError(f"unknown task {name!r}")


def task(name: str) -> MatchTask:
    """One named match task (cached -- the protein pair is expensive)."""
    return _task(name)


def domain_tasks() -> list:
    """The four Figure 5 domains: PO, Book, DCMD, Protein."""
    return [task("PO"), task("Book"), task("DCMD"), task("Protein")]


def figure6_tasks() -> list:
    """The three Figure 6 pairs (protein excluded, as in the paper)."""
    return [task("PO"), task("Book"), task("DCMD")]


def extreme_task() -> MatchTask:
    """The Library/Human pair of Figures 7-9 (no gold: the paper reports
    only overall QoM values for it)."""
    return task("Extreme")
