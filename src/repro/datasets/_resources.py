"""Access to the data files bundled with :mod:`repro.datasets`."""

from __future__ import annotations

from importlib import resources


def read_xsd(filename: str) -> str:
    return (resources.files("repro.datasets") / "xsd" / filename).read_text(
        encoding="utf-8"
    )


def read_gold(filename: str) -> str:
    return (resources.files("repro.datasets") / "gold" / filename).read_text(
        encoding="utf-8"
    )
