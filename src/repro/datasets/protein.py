"""The protein schemas (Table 1: PIR, 231 elements / PDB, 3753 elements).

The paper evaluated on schemas from the Protein Information Resource and
the Protein Data Bank; neither XSD is archived with the paper.  Per the
substitution policy in DESIGN.md we reproduce their *workload
characteristics* exactly:

- **PIR**: a deterministic generated schema with exactly 231 elements
  and max depth 6, drawn from protein-domain vocabulary;
- **PDB**: derived from PIR by thesaurus-driven renames, child shuffles
  and retypes (so a gold mapping exists by construction -- the paper
  itself notes manual matching is "nearly impossible" at this scale),
  then grown with additional protein-flavoured subtrees to exactly 3753
  elements and max depth 7.

Everything is seeded: ``pir()`` and ``pdb_with_gold()`` always return
identical trees.
"""

from __future__ import annotations

import random

from repro.evaluation.gold import GoldMapping
from repro.linguistic.tokenizer import tokenize
from repro.xsd.generator import GeneratorConfig, SchemaGenerator
from repro.xsd.model import NodeKind, SchemaNode, SchemaTree
from repro.xsd.mutations import MutationConfig, SchemaMutator

DOMAIN = "protein"

PIR_SIZE, PIR_DEPTH = 231, 6
PDB_SIZE, PDB_DEPTH = 3753, 7

#: Protein-domain vocabulary for generated names.
PROTEIN_VOCABULARY = (
    "protein", "sequence", "residue", "chain", "organism", "gene",
    "feature", "reference", "citation", "author", "entry", "accession",
    "keyword", "taxonomy", "structure", "atom", "helix", "strand",
    "source", "database", "date", "method", "resolution", "experiment",
    "molecule", "compound", "enzyme", "function", "domain", "motif",
    "site", "modification", "length", "weight", "formula", "species",
    "classification", "superfamily", "alignment", "annotation",
)

PROTEIN_TYPE_POOL = (
    "string", "integer", "decimal", "date", "anyURI", "token",
)

#: Token-level renames applied when deriving PDB from PIR; every entry
#: is thesaurus-recoverable (synonym, abbreviation or related term) so a
#: linguistic matcher has a fighting chance, as it would between the
#: real PIR and PDB vocabularies.
_RENAME_MAP = {
    "protein": "polypeptide",
    "sequence": "seq",
    "reference": "citation",
    "organism": "species",
    "feature": "annotation",
    "structure": "conformation",
    "entry": "record",
    "number": "num",
    "identifier": "id",
    "description": "desc",
    "accession": "acc",
    "gene": "locus",
    "taxonomy": "classification",
    "keyword": "term",
    "author": "depositor",
    "method": "technique",
    "molecule": "mol",
    "motif": "pattern",
    "chain": "sequence",
    "residue": "aminoacid",
}


def pir() -> SchemaTree:
    """The PIR-scale schema: exactly 231 elements, depth 6."""
    config = GeneratorConfig(
        n_nodes=PIR_SIZE,
        max_depth=PIR_DEPTH,
        seed=1104,
        vocabulary=PROTEIN_VOCABULARY,
        type_pool=PROTEIN_TYPE_POOL,
        root_name="ProteinEntry",
        domain=DOMAIN,
    )
    return SchemaGenerator(config).generate()


def _thesaurus_rename(name, rng):
    """Rename a label by swapping one token through the rename map."""
    tokens = tokenize(name)
    swappable = [i for i, token in enumerate(tokens) if token in _RENAME_MAP]
    if not swappable:
        return name
    index = rng.choice(swappable)
    tokens[index] = _RENAME_MAP[tokens[index]]
    return tokens[0] + "".join(token.capitalize() for token in tokens[1:])


def pdb_with_gold() -> tuple[SchemaTree, GoldMapping]:
    """The PDB-scale schema plus the gold mapping back to PIR.

    Returns ``(pdb_tree, gold)`` where every gold pair maps a PIR node
    path to its (possibly renamed) PDB counterpart.
    """
    base = pir()
    mutator = SchemaMutator(
        MutationConfig(
            seed=2005,
            rename_probability=0.35,
            shuffle_probability=0.15,
            retype_probability=0.05,
        ),
        rename=_thesaurus_rename,
        type_pool=PROTEIN_TYPE_POOL,
    )
    mutated, gold_pairs = mutator.mutate(base, name="PDB")
    _grow(mutated, target_size=PDB_SIZE, target_depth=PDB_DEPTH, seed=2005)
    mutated.domain = DOMAIN
    mutated.validate()
    assert mutated.size == PDB_SIZE, mutated.size
    assert mutated.max_depth == PDB_DEPTH, mutated.max_depth
    return mutated, GoldMapping(gold_pairs)


def pdb() -> SchemaTree:
    """The PDB-scale schema (3753 elements, depth 7)."""
    return pdb_with_gold()[0]


def _grow(tree: SchemaTree, target_size: int, target_depth: int, seed: int):
    """Grow ``tree`` in place to the exact size and depth.

    Only *adds* nodes (with globally fresh names), so existing node
    paths -- and therefore the gold mapping -- stay valid.  One chain is
    extended to hit ``target_depth`` exactly; the rest of the budget is
    spent attaching small groups of leaves under random interior nodes.
    """
    rng = random.Random(seed)
    counter = [0]

    def fresh_node(type_name=None):
        counter[0] += 1
        first = rng.choice(PROTEIN_VOCABULARY)
        second = rng.choice(PROTEIN_VOCABULARY)
        name = f"{first}{second.capitalize()}X{counter[0]}"
        return SchemaNode(
            name,
            kind=NodeKind.ELEMENT,
            type_name=type_name,
            min_occurs=rng.choice((0, 1, 1)),
        )

    budget = target_size - tree.size
    if budget < 0:
        raise ValueError(
            f"tree already has {tree.size} nodes, more than {target_size}"
        )

    # Depth spine: a fresh chain from the root down to target_depth.
    current_depth = tree.max_depth
    if current_depth < target_depth:
        parent = tree.root
        for _ in range(target_depth):
            node = fresh_node()
            parent.add_child(node)
            parent = node
            budget -= 1
        parent.type_name = rng.choice(PROTEIN_TYPE_POOL)

    # Only *interior* existing nodes (and freshly grown ones) receive
    # children: attaching under a PIR-mapped leaf would turn it into an
    # interior node and artificially break the gold correspondences --
    # in reality PDB's extra detail lives in its richer containers.
    expandable = [
        node for node in tree.root.iter_preorder()
        if not node.is_attribute and not node.is_leaf
        and node.level < target_depth
    ]
    while budget > 0:
        parent = rng.choice(expandable)
        batch = min(budget, rng.randint(2, 6))
        for _ in range(batch):
            child = fresh_node(type_name=rng.choice(PROTEIN_TYPE_POOL))
            parent.add_child(child)
            budget -= 1
            if child.level < target_depth:
                expandable.append(child)
