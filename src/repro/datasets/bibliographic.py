"""The bibliographic schemas (Table 1: Article, 18 elements / Book, 6).

Both are parsed from bundled XSD documents.  The reconstruction follows
the obvious bibliographic reading (the thesis with the full listings is
not archived); the gold mapping keeps only the information the two
schemas genuinely share.
"""

from __future__ import annotations

from repro.datasets._resources import read_gold, read_xsd
from repro.evaluation.gold import GoldMapping
from repro.xsd.model import SchemaTree
from repro.xsd.parser import parse_xsd

DOMAIN = "bibliographic"


def article() -> SchemaTree:
    """The Article schema (18 elements, depth 3)."""
    return parse_xsd(read_xsd("article.xsd"), name="Article", domain=DOMAIN)


def book() -> SchemaTree:
    """The Book schema (6 elements, depth 2)."""
    return parse_xsd(read_xsd("book.xsd"), name="Book", domain=DOMAIN)


def gold_article_book() -> GoldMapping:
    """The manually determined real matches between Article and Book."""
    return GoldMapping.loads(
        read_gold("article_book.tsv"), source="article_book.tsv"
    )
