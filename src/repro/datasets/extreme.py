"""The Figure 7/8 extreme-case schemas: Library and Human.

Two trees with *identical structure* (same shape, same leaf types, same
occurrence constraints) but *disjoint vocabulary*.  The linguistic
matcher scores them near zero, the structural matcher near one, and
Figure 9's point is that QMatch's hybrid score gravitates toward the
higher (structural) value rather than averaging the two.
"""

from __future__ import annotations

from repro.xsd.builder import TreeBuilder
from repro.xsd.model import SchemaTree

DOMAIN = "extreme"


def library() -> SchemaTree:
    """Figure 7: the Library schema."""
    builder = TreeBuilder("Library")
    builder.leaf("number", type_name="string")
    with builder.node("Book"):
        builder.leaf("Title", type_name="string")
        builder.leaf("character", type_name="string")
        builder.leaf("Writer", type_name="string")
    return builder.build(name="Library", domain=DOMAIN)


def human() -> SchemaTree:
    """Figure 8: the Human schema (structurally identical to Library)."""
    builder = TreeBuilder("human")
    builder.leaf("body", type_name="string")
    with builder.node("man"):
        builder.leaf("hands", type_name="string")
        builder.leaf("head", type_name="string")
        builder.leaf("legs", type_name="string")
    return builder.build(name="Human", domain=DOMAIN)
