"""The purchase-order schemas of the paper's Figures 1 and 2.

``po1`` (the *PO* schema) is parsed from a bundled XSD document --
exercising the real parser path; ``po2`` (the *Purchase Order* schema)
is built programmatically because its ``Item#`` label is not a legal XML
element name (the paper's figure uses it, so we keep it).

Table 1 characteristics: PO1 has 10 elements with max depth 3; PO2 has
9 elements.  (The paper's Table 1 lists depth 3 for PO2 as well, but its
own Figure 2 -- root, five children, three grandchildren -- has depth 2
by edge count and its prose relies on "the height difference between the
schema trees"; we follow the figure.  See EXPERIMENTS.md.)
"""

from __future__ import annotations

from repro.datasets._resources import read_gold, read_xsd
from repro.evaluation.gold import GoldMapping
from repro.xsd.builder import TreeBuilder
from repro.xsd.model import SchemaTree
from repro.xsd.parser import parse_xsd

DOMAIN = "purchase-order"


def po1() -> SchemaTree:
    """The PO schema (Figure 1), parsed from the bundled XSD."""
    return parse_xsd(read_xsd("po1.xsd"), name="PO1", domain=DOMAIN)


def po2() -> SchemaTree:
    """The Purchase Order schema (Figure 2)."""
    builder = TreeBuilder("PurchaseOrder")
    builder.leaf("OrderNo", type_name="integer")
    builder.leaf("BillTo", type_name="string")
    builder.leaf("ShipTo", type_name="string")
    with builder.node("Items"):
        builder.leaf("Item#", type_name="string")
        builder.leaf("Qty", type_name="integer")
        builder.leaf("UOM", type_name="string")
    builder.leaf("Date", type_name="date")
    return builder.build(name="PO2", domain=DOMAIN)


def gold_po() -> GoldMapping:
    """The manually determined real matches between PO1 and PO2."""
    return GoldMapping.loads(read_gold("po.tsv"), source="po.tsv")
