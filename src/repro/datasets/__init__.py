"""Reconstructed evaluation datasets (paper Section 5, Table 1).

Every schema the paper evaluates on, rebuilt from its figures, prose and
Table 1 characteristics -- see each submodule's docstring and DESIGN.md
for the reconstruction notes:

- :mod:`repro.datasets.po` -- PO1 / PO2 (Figures 1-2);
- :mod:`repro.datasets.bibliographic` -- Article / Book;
- :mod:`repro.datasets.dcmd` -- the XBench DC/MD item and order schemas;
- :mod:`repro.datasets.protein` -- PIR / PDB scale substitutes;
- :mod:`repro.datasets.extreme` -- Library / Human (Figures 7-8);
- :mod:`repro.datasets.registry` -- everything by name, plus the ready
  evaluation tasks for each figure.
"""

from repro.datasets.bibliographic import article, book, gold_article_book
from repro.datasets.dcmd import dcmd_item, dcmd_order, gold_dcmd
from repro.datasets.extreme import human, library
from repro.datasets.inventory import gold_inventory, store, warehouse
from repro.datasets.po import gold_po, po1, po2
from repro.datasets.protein import pdb, pdb_with_gold, pir
from repro.datasets.registry import (
    TABLE1_NAMES,
    TABLE1_PAPER,
    domain_tasks,
    extreme_task,
    figure6_tasks,
    load_schema,
    schema_names,
    table1_schemas,
    task,
)

__all__ = [
    "TABLE1_NAMES",
    "TABLE1_PAPER",
    "article",
    "book",
    "dcmd_item",
    "dcmd_order",
    "domain_tasks",
    "extreme_task",
    "figure6_tasks",
    "gold_article_book",
    "gold_dcmd",
    "gold_inventory",
    "gold_po",
    "human",
    "library",
    "load_schema",
    "pdb",
    "pdb_with_gold",
    "pir",
    "po1",
    "po2",
    "schema_names",
    "store",
    "table1_schemas",
    "task",
    "warehouse",
]
