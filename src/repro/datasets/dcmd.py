"""The XBench DC/MD schemas (Table 1: DCMDItem 38 / DCMDOrd 53 elements).

XBench's data-centric multi-document (DC/MD) workload models an online
catalog: per-item records built on Dublin-Core-style fields and customer
orders referencing those items.  The original XSDs are no longer
archived; these reconstructions match the reported element counts and
depths exactly (asserted in tests) and the catalog/order vocabulary.
"""

from __future__ import annotations

from repro.datasets._resources import read_gold
from repro.evaluation.gold import GoldMapping
from repro.xsd.builder import TreeBuilder
from repro.xsd.model import SchemaTree

DOMAIN = "dcmd"


def dcmd_item() -> SchemaTree:
    """Catalog item record: 38 elements, max depth 2."""
    builder = TreeBuilder("item_record")
    for name, type_name in (
        ("item_id", "ID"),
        ("title", "string"),
        ("description", "string"),
        ("language", "language"),
        ("format", "string"),
        ("type", "string"),
        ("source", "anyURI"),
        ("rights", "string"),
        ("subject", "string"),
        ("coverage", "string"),
        ("relation", "string"),
        ("edition", "string"),
    ):
        builder.leaf(name, type_name=type_name)
    with builder.node("authors"):
        builder.leaf("first_name", type_name="string")
        builder.leaf("middle_name", type_name="string", min_occurs=0)
        builder.leaf("last_name", type_name="string")
        builder.leaf("degree", type_name="string", min_occurs=0)
    with builder.node("publisher"):
        builder.leaf("publisher_name", type_name="string")
        builder.leaf("publisher_location", type_name="string")
        builder.leaf("contact_email", type_name="string", min_occurs=0)
    with builder.node("pricing"):
        builder.leaf("list_price", type_name="decimal")
        builder.leaf("discount_price", type_name="decimal", min_occurs=0)
        builder.leaf("currency", type_name="string")
    with builder.node("availability"):
        builder.leaf("in_stock", type_name="boolean")
        builder.leaf("lead_time", type_name="integer")
        builder.leaf("warehouse_location", type_name="string")
    with builder.node("dimensions"):
        builder.leaf("weight", type_name="decimal")
        builder.leaf("height", type_name="decimal")
        builder.leaf("width", type_name="decimal")
        builder.leaf("depth_size", type_name="decimal")
    with builder.node("dates"):
        builder.leaf("release_date", type_name="date")
        builder.leaf("update_date", type_name="date", min_occurs=0)
    return builder.build(name="DCMDItem", domain=DOMAIN)


def dcmd_order() -> SchemaTree:
    """Customer order: 53 elements, max depth 3.

    As in XBench's DC/MD workload, each order line *embeds* the
    description of the ordered item, so a large share of DCMDItem's
    fields reappear here (flattened and partly renamed) -- that overlap
    is what the paper's ~35 manual XBench matches (Figure 6) imply.
    """
    builder = TreeBuilder("order")
    for name, type_name in (
        ("order_id", "ID"),
        ("order_date", "date"),
        ("order_status", "string"),
        ("total_amount", "decimal"),
        ("currency", "string"),
        ("payment_method", "string"),
        ("tax_amount", "decimal"),
    ):
        builder.leaf(name, type_name=type_name)
    with builder.node("customer"):
        builder.leaf("customer_id", type_name="ID")
        builder.leaf("first_name", type_name="string")
        builder.leaf("last_name", type_name="string")
        builder.leaf("email", type_name="string")
        builder.leaf("phone", type_name="string", min_occurs=0)
    with builder.node("ship_to"):
        builder.leaf("street", type_name="string")
        builder.leaf("city", type_name="string")
        builder.leaf("state", type_name="string")
        builder.leaf("zip_code", type_name="string")
        builder.leaf("country", type_name="string")
    with builder.node("shipment"):
        builder.leaf("carrier", type_name="string")
        builder.leaf("tracking_number", type_name="string", min_occurs=0)
        builder.leaf("ship_date", type_name="date")
        builder.leaf("shipping_cost", type_name="decimal")
    with builder.node("order_lines"):
        with builder.node("line_item", max_occurs=-1):
            builder.leaf("quantity", type_name="integer")
            builder.leaf("unit_price", type_name="decimal")
            builder.leaf("discount", type_name="decimal", min_occurs=0)
            builder.leaf("line_total", type_name="decimal")
            # Embedded item description (mirrors DCMDItem, flattened).
            builder.leaf("item_id", type_name="ID")
            builder.leaf("item_title", type_name="string")
            builder.leaf("item_description", type_name="string")
            builder.leaf("format", type_name="string")
            builder.leaf("language", type_name="language")
            builder.leaf("edition", type_name="string")
            builder.leaf("subject", type_name="string")
            builder.leaf("rights", type_name="string")
            builder.leaf("publisher_name", type_name="string")
            builder.leaf("publisher_location", type_name="string")
            builder.leaf("author_first_name", type_name="string")
            builder.leaf("author_last_name", type_name="string")
            builder.leaf("list_price", type_name="decimal")
            builder.leaf("item_currency", type_name="string")
            builder.leaf("weight", type_name="decimal")
            builder.leaf("height", type_name="decimal")
            builder.leaf("width", type_name="decimal")
            builder.leaf("release_date", type_name="date")
            builder.leaf("in_stock", type_name="boolean")
    builder.leaf("notes", type_name="string", min_occurs=0)
    builder.leaf("gift_wrap", type_name="boolean", min_occurs=0)
    builder.leaf("promotion_code", type_name="string", min_occurs=0)
    return builder.build(name="DCMDOrd", domain=DOMAIN)


def gold_dcmd() -> GoldMapping:
    """The manually determined real matches between item and order."""
    return GoldMapping.loads(read_gold("dcmd.tsv"), source="dcmd.tsv")
