"""The Inventory-domain schemas.

Section 5's setup names three application domains -- "Inventory, Books
and Protein" -- but Table 1 itemizes only the purchase-order,
bibliographic, XBench and protein schemas.  This pair reconstructs the
inventory domain as its prose describes it: the same stock-keeping
reality modeled by a warehouse-management system and by a retailer,
with different labels (SKU / Barcode, UnitCost / Price), different
nesting (a typed storage-location subtree vs. a flat record) and
different attribute usage.

Both schemas are parsed from bundled XSD files that deliberately
exercise the parser's named complex types, attribute groups and
attribute defaults.
"""

from __future__ import annotations

from repro.datasets._resources import read_gold, read_xsd
from repro.evaluation.gold import GoldMapping
from repro.xsd.model import SchemaTree
from repro.xsd.parser import parse_xsd

DOMAIN = "inventory"


def warehouse() -> SchemaTree:
    """The warehouse-management view (named types, audit attributes)."""
    return parse_xsd(read_xsd("inventory_wh.xsd"), name="Warehouse",
                     domain=DOMAIN)


def store() -> SchemaTree:
    """The retailer's flattened view of the same stock."""
    return parse_xsd(read_xsd("inventory_store.xsd"), name="Store",
                     domain=DOMAIN)


def gold_inventory() -> GoldMapping:
    """The manually determined real matches between the two views."""
    return GoldMapping.loads(read_gold("inventory.tsv"),
                             source="inventory.tsv")
