"""The property matcher (the QoM properties axis).

Implements Section 2.1's properties-axis rules:

- each property is compared individually;
- the axis is **exact** when every compared property matches exactly;
- **relaxed** when the consensus of the individual matches is relaxed --
  e.g. a differing ``order``, or a ``minOccurs``/``maxOccurs``/``type``
  generalization or specialization;
- **none** as soon as an individual property has no match at all.

Besides the classification, the matcher produces a numeric axis score
(QoM_P): a weighted mean of per-property scores where an exact property
contributes 1.0, a relaxed one its partial credit, a failed one 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType

from repro.matching.base import Matcher
from repro.matching.classes import MatchStrength, consensus
from repro.properties.types import type_similarity, type_strength
from repro.xsd.model import UNBOUNDED, SchemaNode

#: Default per-property weights.  ``type`` dominates (it is the one
#: property matchers traditionally trust most); the remaining weight is
#: split over occurrence constraints, sibling order and node kind.
DEFAULT_PROPERTY_WEIGHTS = MappingProxyType({
    "type": 0.45,
    "order": 0.15,
    "min_occurs": 0.15,
    "max_occurs": 0.15,
    "kind": 0.10,
})


@dataclass(frozen=True)
class PropertyConfig:
    """Knobs of the property matcher.

    ``relaxed_credit`` is the numeric score a relaxed property match
    contributes; ``compare_order`` may be disabled for matchers that do
    not trust sibling order (order is the piece of XML-specific
    information the paper highlights, so it defaults to on).
    """

    weights: MappingProxyType = field(
        default_factory=lambda: DEFAULT_PROPERTY_WEIGHTS
    )
    relaxed_credit: float = 0.5
    compare_order: bool = True


@dataclass(frozen=True)
class PropertyComparison:
    """Outcome of comparing two property sets.

    ``per_property`` maps each compared property name to its
    :class:`MatchStrength`; ``strength`` is their consensus, ``score``
    the weighted numeric QoM_P.
    """

    score: float
    strength: MatchStrength
    per_property: dict = field(default_factory=dict)

    @property
    def is_exact(self):
        return self.strength is MatchStrength.EXACT


class PropertyMatcher:
    """Compares the property sets of two schema nodes.

    Comparisons depend only on a small signature (type, order,
    occurrences, kind) of each node, so results are cached per signature
    pair -- the QMatch inner loop calls this for every node pair.
    """

    def __init__(self, config=None):
        self.config = config or PropertyConfig()
        self._cache: dict = {}

    @staticmethod
    def signature(node: SchemaNode):
        """The node's property tuple; equal signatures compare equal."""
        return (
            node.type_name, node.order, node.min_occurs, node.max_occurs,
            node.kind,
        )

    # Backwards-compatible alias (pre-engine name).
    _signature = signature

    def compare(self, source: SchemaNode, target: SchemaNode) -> PropertyComparison:
        """Compare ``source`` and ``target`` along the properties axis."""
        key = (self.signature(source), self.signature(target))
        cached = self._cache.get(key)
        if cached is None:
            cached = self._compare_uncached(source, target)
            self._cache[key] = cached
        return cached

    def _compare_uncached(self, source, target) -> PropertyComparison:
        outcomes = {}
        scores = {}

        outcomes["type"] = type_strength(source.type_name, target.type_name)
        scores["type"] = type_similarity(source.type_name, target.type_name)

        if self.config.compare_order:
            outcomes["order"] = self._order_strength(source, target)
            scores["order"] = _strength_score(
                outcomes["order"], self.config.relaxed_credit
            )

        outcomes["min_occurs"] = self._occurs_strength(
            source.min_occurs, target.min_occurs
        )
        scores["min_occurs"] = _strength_score(
            outcomes["min_occurs"], self.config.relaxed_credit
        )
        outcomes["max_occurs"] = self._occurs_strength(
            source.max_occurs, target.max_occurs
        )
        scores["max_occurs"] = _strength_score(
            outcomes["max_occurs"], self.config.relaxed_credit
        )

        outcomes["kind"] = (
            MatchStrength.EXACT if source.kind is target.kind
            else MatchStrength.RELAXED
        )
        scores["kind"] = _strength_score(outcomes["kind"], self.config.relaxed_credit)

        weights = self.config.weights
        total_weight = sum(weights.get(name, 0.0) for name in scores)
        if total_weight <= 0:
            raise ValueError("property weights sum to zero for compared properties")
        score = sum(
            weights.get(name, 0.0) * value for name, value in scores.items()
        ) / total_weight
        return PropertyComparison(
            score=score,
            strength=consensus(outcomes.values()),
            per_property=outcomes,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _order_strength(source, target) -> MatchStrength:
        """Sibling order: exact when equal, relaxed otherwise (paper rule).

        Roots (order ``None``) compare exact against roots, relaxed
        against positioned nodes.
        """
        if source.order == target.order:
            return MatchStrength.EXACT
        return MatchStrength.RELAXED

    @staticmethod
    def _occurs_strength(source_value, target_value) -> MatchStrength:
        """Occurrence constraint: exact when equal, relaxed otherwise.

        Any two occurrence values relate by generalization (the smaller
        ``minOccurs`` / the larger ``maxOccurs`` is the generalization --
        the paper's ``minOccurs=0`` generalizes ``minOccurs=1`` example),
        so a differing value is a relaxed match, never a failed one.
        """
        if source_value == target_value:
            return MatchStrength.EXACT
        return MatchStrength.RELAXED


def _strength_score(strength, relaxed_credit) -> float:
    if strength is MatchStrength.EXACT:
        return 1.0
    if strength is MatchStrength.RELAXED:
        return relaxed_credit
    return 0.0


class PropertiesMatcher(Matcher):
    """Single-axis matcher: the properties axis as a standalone algorithm.

    Scores every node pair by :class:`PropertyMatcher.compare` alone --
    weak on its own (like every single-evidence matcher) but a useful
    registry citizen for composites and ablations, and the natural
    "properties" family entry of the engine's matcher registry.
    """

    name = "properties"

    def __init__(self, property_matcher=None, config=None):
        self.property_matcher = property_matcher or PropertyMatcher(config=config)

    def make_context(self, source, target, stats=None, cache_enabled=True,
                     tracer=None):
        from repro.engine.context import MatchContext

        return MatchContext(
            source, target, property_matcher=self.property_matcher,
            stats=stats, cache_enabled=cache_enabled, tracer=tracer,
        )

    def match_context(self, ctx):
        from repro.matching.result import ScoreMatrix

        matrix = ScoreMatrix(ctx.source, ctx.target)
        t_nodes = ctx.target_preorder
        for s_node in ctx.source_preorder:
            for t_node in t_nodes:
                matrix.set(
                    s_node, t_node,
                    ctx.property_comparison(s_node, t_node).score,
                )
        ctx.stats.count("properties.pairs", len(matrix))
        return matrix


def occurs_range_overlaps(min_a, max_a, min_b, max_b) -> bool:
    """Whether two occurrence ranges overlap (``UNBOUNDED`` = infinity).

    Utility used by tests and the structural matcher's leaf comparison.
    """
    upper_a = float("inf") if max_a == UNBOUNDED else max_a
    upper_b = float("inf") if max_b == UNBOUNDED else max_b
    return min_a <= upper_b and min_b <= upper_a
