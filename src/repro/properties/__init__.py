"""Property-axis substrate: XSD type lattice and property matcher.

The QMatch properties axis (paper Section 2.1) compares each property of
two nodes individually -- ``type``, ``order``, ``minOccurs``,
``maxOccurs``, plus whatever else the schema declares -- and classifies
each as exact, relaxed (generalization / specialization) or none.  The
axis-level outcome is the consensus of the per-property outcomes.

- :mod:`repro.properties.types` -- the XSD built-in type derivation
  lattice used to decide when one type generalizes another;
- :mod:`repro.properties.matcher` -- the property matcher itself.
"""

from repro.properties.matcher import (
    PropertyComparison,
    PropertyConfig,
    PropertyMatcher,
)
from repro.properties.types import (
    TYPE_FAMILIES,
    type_distance,
    type_family,
    type_similarity,
    type_strength,
)

__all__ = [
    "PropertyComparison",
    "PropertyConfig",
    "PropertyMatcher",
    "TYPE_FAMILIES",
    "type_distance",
    "type_family",
    "type_similarity",
    "type_strength",
]
