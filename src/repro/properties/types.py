"""The XSD built-in type lattice.

XML Schema Part 2 defines a derivation hierarchy over the built-in simple
types (``byte`` derives from ``short`` derives from ``int`` ... derives
from ``decimal``).  The paper's relaxed property match relies on it: a
type property matches *relaxed* "if the property value of the source is a
generalization or a specialization of the target property".

This module encodes that hierarchy and derives three queries from it:

- :func:`type_distance` -- derivation steps between two types along
  ancestor chains (``None`` when unrelated);
- :func:`type_strength` -- the exact / relaxed / none classification;
- :func:`type_similarity` -- a numeric score in ``[0, 1]``.

Types outside the hierarchy (user-defined names) compare by string
equality, with ``None`` (no declared type, i.e. ``anyType``) acting as
the top of the lattice.
"""

from __future__ import annotations

from repro.matching.classes import MatchStrength

#: child -> parent in the XSD Part 2 derivation hierarchy.
_PARENT = {
    "anySimpleType": "anyType",
    # string branch
    "string": "anySimpleType",
    "normalizedString": "string",
    "token": "normalizedString",
    "language": "token",
    "NMTOKEN": "token",
    "NMTOKENS": "NMTOKEN",
    "Name": "token",
    "NCName": "Name",
    "ID": "NCName",
    "IDREF": "NCName",
    "IDREFS": "IDREF",
    "ENTITY": "NCName",
    "ENTITIES": "ENTITY",
    # numeric branch
    "decimal": "anySimpleType",
    "integer": "decimal",
    "nonPositiveInteger": "integer",
    "negativeInteger": "nonPositiveInteger",
    "long": "integer",
    "int": "long",
    "short": "int",
    "byte": "short",
    "nonNegativeInteger": "integer",
    "unsignedLong": "nonNegativeInteger",
    "unsignedInt": "unsignedLong",
    "unsignedShort": "unsignedInt",
    "unsignedByte": "unsignedShort",
    "positiveInteger": "nonNegativeInteger",
    # other primitives
    "float": "anySimpleType",
    "double": "anySimpleType",
    "boolean": "anySimpleType",
    "duration": "anySimpleType",
    "dateTime": "anySimpleType",
    "time": "anySimpleType",
    "date": "anySimpleType",
    "gYearMonth": "anySimpleType",
    "gYear": "anySimpleType",
    "gMonthDay": "anySimpleType",
    "gDay": "anySimpleType",
    "gMonth": "anySimpleType",
    "hexBinary": "anySimpleType",
    "base64Binary": "anySimpleType",
    "anyURI": "anySimpleType",
    "QName": "anySimpleType",
    "NOTATION": "anySimpleType",
}

#: Loose families: types in the same family that are not lattice-related
#: (float vs decimal, date vs dateTime) still score a weak similarity.
TYPE_FAMILIES = {
    "numeric": frozenset({
        "decimal", "integer", "nonPositiveInteger", "negativeInteger",
        "long", "int", "short", "byte", "nonNegativeInteger",
        "unsignedLong", "unsignedInt", "unsignedShort", "unsignedByte",
        "positiveInteger", "float", "double",
    }),
    "textual": frozenset({
        "string", "normalizedString", "token", "language", "NMTOKEN",
        "NMTOKENS", "Name", "NCName", "ID", "IDREF", "IDREFS", "ENTITY",
        "ENTITIES", "anyURI", "QName",
    }),
    "temporal": frozenset({
        "duration", "dateTime", "time", "date", "gYearMonth", "gYear",
        "gMonthDay", "gDay", "gMonth",
    }),
    "binary": frozenset({"hexBinary", "base64Binary"}),
}

_FAMILY_OF = {
    type_name: family
    for family, members in TYPE_FAMILIES.items()
    for type_name in members
}

#: Score for a direct lattice relationship, decayed per extra step.
_LATTICE_BASE = 0.8
_LATTICE_DECAY = 0.1
#: Score for same-family-but-unrelated types.
_FAMILY_SCORE = 0.5
#: Score for comparisons where one side has no declared type (anyType).
_ANY_SCORE = 0.5


def is_builtin(type_name) -> bool:
    """True when the name is an XSD built-in simple (or any) type."""
    return type_name in _PARENT or type_name == "anyType"


def _ancestors(type_name):
    """The chain from ``type_name`` (exclusive) up to ``anyType``."""
    chain = []
    current = _PARENT.get(type_name)
    while current is not None:
        chain.append(current)
        current = _PARENT.get(current)
    return chain


def type_family(type_name):
    """The loose family of a built-in type, or ``None``."""
    return _FAMILY_OF.get(type_name)


def type_distance(left, right):
    """Derivation steps between two built-in types, or ``None``.

    0 for identical types, 1 for parent/child, 2 for grandparent or two
    children of one parent counted through their meet, and so on.  Only
    ancestor-chain relationships count: the distance is the number of
    steps from the more derived type up to the other (``int`` ->
    ``decimal`` is 2).  Unrelated or unknown types give ``None``.
    """
    if left == right:
        return 0
    if not is_builtin(left) or not is_builtin(right):
        return None
    left_chain = _ancestors(left)
    if right in left_chain:
        return left_chain.index(right) + 1
    right_chain = _ancestors(right)
    if left in right_chain:
        return right_chain.index(left) + 1
    return None


def type_strength(left, right) -> MatchStrength:
    """Exact / relaxed / none classification of a type pair.

    - equal names (or both undeclared) -> EXACT;
    - one side undeclared (``anyType``) -> RELAXED (anyType generalizes
      everything);
    - lattice ancestor/descendant -> RELAXED;
    - same loose family -> RELAXED;
    - otherwise NONE.
    """
    if left == right:
        return MatchStrength.EXACT
    if left is None or right is None or "anyType" in (left, right):
        return MatchStrength.RELAXED
    distance = type_distance(left, right)
    if distance is not None:
        return MatchStrength.RELAXED
    if type_family(left) is not None and type_family(left) == type_family(right):
        return MatchStrength.RELAXED
    return MatchStrength.NONE


def type_similarity(left, right) -> float:
    """Numeric type similarity in ``[0, 1]``.

    1.0 for equal types; lattice relatives score ``0.8`` minus ``0.1``
    per extra derivation step (floored at the family score); same-family
    types score 0.5; anything else 0.
    """
    if left == right:
        return 1.0
    if left is None or right is None or "anyType" in (left, right):
        return _ANY_SCORE
    distance = type_distance(left, right)
    if distance is not None:
        return max(_LATTICE_BASE - _LATTICE_DECAY * (distance - 1), _FAMILY_SCORE)
    if type_family(left) is not None and type_family(left) == type_family(right):
        return _FAMILY_SCORE
    return 0.0
