"""Exception hierarchy for the XSD substrate."""


class SchemaError(Exception):
    """Base class for every error raised by :mod:`repro.xsd`."""


class SchemaParseError(SchemaError):
    """Raised when an XSD document cannot be parsed into a schema tree.

    Carries an optional ``location`` describing where in the document the
    problem was found (an element path such as ``schema/complexType[2]``).
    """

    def __init__(self, message, location=None):
        self.location = location
        if location:
            message = f"{message} (at {location})"
        super().__init__(message)


class SchemaValidationError(SchemaError):
    """Raised when a schema tree violates a structural invariant.

    Examples: a node that is its own ancestor, an attribute node with
    children, or an occurrence range with ``min_occurs > max_occurs``.
    """
