"""Schema diff: what changed between two versions of one schema.

Matching handles *different* schemas; evolution handles *versions* of
the same one.  :func:`diff_schemas` classifies every node of the new
version against the old:

- **unchanged** -- same path, same subtree fingerprint, same level;
- **modified** -- same path, but properties or descendants changed;
- **renamed** -- no node at the path, but a removed sibling under the
  same parent matches linguistically and structurally (type and child
  count agree and the labels relate);
- **added** / **removed** -- everything else.

The rename heuristic keeps evolution diffs readable (a pure
added+removed pair for every rename buries the signal) and feeds
:func:`repro.matching.incremental.incremental_qmatch`'s consumers with
a change log.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.linguistic.matcher import LinguisticMatcher
from repro.matching.incremental import node_fingerprint
from repro.xsd.model import SchemaNode, SchemaTree

#: Label similarity needed to call a same-parent add/remove pair a rename.
RENAME_THRESHOLD = 0.5


@dataclass(frozen=True)
class SchemaDiff:
    """Classified changes from ``old`` to ``new``."""

    unchanged: tuple
    modified: tuple
    #: (old_path, new_path) pairs
    renamed: tuple
    added: tuple
    removed: tuple

    @property
    def is_empty(self) -> bool:
        return not (self.modified or self.renamed or self.added or self.removed)

    def render(self) -> str:
        if self.is_empty:
            return "no changes"
        lines = []
        for path in self.added:
            lines.append(f"+ {path}")
        for path in self.removed:
            lines.append(f"- {path}")
        for old_path, new_path in self.renamed:
            lines.append(f"~ {old_path} -> {new_path}")
        for path in self.modified:
            lines.append(f"* {path} (modified)")
        return "\n".join(lines)


def diff_schemas(old: SchemaTree, new: SchemaTree,
                 linguistic: LinguisticMatcher = None) -> SchemaDiff:
    """Classify every change between two versions of a schema."""
    linguistic = linguistic or LinguisticMatcher()
    old_by_path = {node.path: node for node in old}
    new_by_path = {node.path: node for node in new}

    unchanged, modified = [], []
    added_nodes, removed_nodes = [], []
    for path, node in new_by_path.items():
        counterpart = old_by_path.get(path)
        if counterpart is None:
            added_nodes.append(node)
        elif (
            node_fingerprint(counterpart) == node_fingerprint(node)
            and counterpart.level == node.level
        ):
            unchanged.append(path)
        else:
            modified.append(path)
    for path, node in old_by_path.items():
        if path not in new_by_path:
            removed_nodes.append(node)

    renamed, added, removed = _detect_renames(
        added_nodes, removed_nodes, linguistic
    )
    return SchemaDiff(
        unchanged=tuple(sorted(unchanged)),
        modified=tuple(sorted(_drop_rename_spines(modified, renamed))),
        renamed=tuple(sorted(renamed)),
        added=tuple(sorted(added)),
        removed=tuple(sorted(removed)),
    )


def _parent_path(path: str) -> str:
    return path.rpartition("/")[0]


def _detect_renames(added_nodes, removed_nodes, linguistic):
    """Pair same-parent added/removed nodes that look like renames."""
    renamed = []
    consumed_removed = set()
    remaining_added = []
    removed_by_parent: dict[str, list[SchemaNode]] = {}
    for node in removed_nodes:
        removed_by_parent.setdefault(_parent_path(node.path), []).append(node)

    for node in added_nodes:
        candidates = removed_by_parent.get(_parent_path(node.path), [])
        best, best_score = None, 0.0
        for candidate in candidates:
            if candidate.path in consumed_removed:
                continue
            if candidate.kind is not node.kind:
                continue
            if candidate.is_leaf != node.is_leaf:
                continue
            if candidate.is_leaf and candidate.type_name != node.type_name:
                continue
            score = linguistic.compare_labels(candidate.name, node.name).score
            if score >= RENAME_THRESHOLD and score > best_score:
                best, best_score = candidate, score
        if best is not None:
            consumed_removed.add(best.path)
            renamed.append((best.path, node.path))
        else:
            remaining_added.append(node.path)

    remaining_removed = [
        node.path for node in removed_nodes
        if node.path not in consumed_removed
    ]

    # A renamed interior node drags its whole subtree into added/removed
    # by path; fold descendants of renamed pairs out of those lists.
    renamed_old_prefixes = tuple(old + "/" for old, _ in renamed)
    renamed_new_prefixes = tuple(new + "/" for _, new in renamed)
    remaining_added = [
        path for path in remaining_added
        if not path.startswith(renamed_new_prefixes)
    ]
    remaining_removed = [
        path for path in remaining_removed
        if not path.startswith(renamed_old_prefixes)
    ]
    return renamed, remaining_added, remaining_removed


def _drop_rename_spines(modified, renamed):
    """Ancestors of a rename show as modified (fingerprint changed);
    keep them -- their content genuinely changed -- but drop exact
    duplicates of rename endpoints."""
    rename_paths = {new for _, new in renamed}
    return [path for path in modified if path not in rename_paths]
