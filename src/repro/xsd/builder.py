"""Fluent construction of schema trees.

Two styles are supported.  The functional style nests calls::

    po = tree(
        element("PO",
            element("OrderNo", type_name="integer"),
            element("PurchaseInfo",
                element("BillingAddr", type_name="string"),
            ),
        ),
        domain="purchase-order",
    )

The imperative :class:`TreeBuilder` style keeps a cursor::

    builder = TreeBuilder("PO")
    builder.leaf("OrderNo", type_name="integer")
    with builder.node("PurchaseInfo"):
        builder.leaf("BillingAddr", type_name="string")
    po = builder.build(domain="purchase-order")

Both produce fully linked :class:`repro.xsd.model.SchemaTree` objects with
sibling order and levels already assigned.
"""

from __future__ import annotations

import contextlib

from repro.xsd.model import NodeKind, SchemaNode, SchemaTree


def element(name, *children, type_name=None, min_occurs=1, max_occurs=1, **properties):
    """Create an element node with nested ``children`` nodes."""
    return SchemaNode(
        name,
        kind=NodeKind.ELEMENT,
        type_name=type_name,
        min_occurs=min_occurs,
        max_occurs=max_occurs,
        properties=properties or None,
        children=children,
    )


def attribute(name, type_name="string", required=False, **properties):
    """Create an attribute node (always a leaf).

    ``required`` maps to the XSD ``use="required"`` semantics: a required
    attribute has ``min_occurs = 1``, an optional one ``min_occurs = 0``.
    """
    props = {"use": "required" if required else "optional"}
    props.update(properties)
    return SchemaNode(
        name,
        kind=NodeKind.ATTRIBUTE,
        type_name=type_name,
        min_occurs=1 if required else 0,
        max_occurs=1,
        properties=props,
    )


def tree(root, name=None, domain=None, target_namespace=None):
    """Wrap a root node into a validated :class:`SchemaTree`."""
    return SchemaTree(
        root, name=name, domain=domain, target_namespace=target_namespace
    ).validate()


class TreeBuilder:
    """Imperative schema-tree builder with a cursor.

    The builder starts positioned at the root.  :meth:`leaf` adds a leaf
    under the cursor; :meth:`node` adds an interior node and (used as a
    context manager) moves the cursor into it for the duration of the
    ``with`` block.
    """

    def __init__(self, root_name, type_name=None, **properties):
        self._root = SchemaNode(
            root_name, type_name=type_name, properties=properties or None
        )
        self._cursor = self._root

    def leaf(self, name, type_name="string", kind=NodeKind.ELEMENT,
             min_occurs=1, max_occurs=1, **properties):
        """Add a leaf element under the cursor and return it."""
        child = SchemaNode(
            name,
            kind=kind,
            type_name=type_name,
            min_occurs=min_occurs,
            max_occurs=max_occurs,
            properties=properties or None,
        )
        self._cursor.add_child(child)
        return child

    def attr(self, name, type_name="string", required=False, **properties):
        """Add an attribute under the cursor and return it."""
        child = attribute(name, type_name=type_name, required=required, **properties)
        self._cursor.add_child(child)
        return child

    @contextlib.contextmanager
    def node(self, name, type_name=None, min_occurs=1, max_occurs=1, **properties):
        """Add an interior element and move the cursor into it."""
        child = SchemaNode(
            name,
            type_name=type_name,
            min_occurs=min_occurs,
            max_occurs=max_occurs,
            properties=properties or None,
        )
        self._cursor.add_child(child)
        previous, self._cursor = self._cursor, child
        try:
            yield child
        finally:
            self._cursor = previous

    def build(self, name=None, domain=None, target_namespace=None) -> SchemaTree:
        """Finish and return the validated tree."""
        return tree(
            self._root, name=name, domain=domain, target_namespace=target_namespace
        )
