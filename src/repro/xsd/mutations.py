"""Controlled schema mutation with gold-mapping tracking.

Evaluating a matcher needs a *gold standard*: the set of real
correspondences between the two input schemas.  For synthetic workloads
we obtain one for free by deriving the target schema from the source
through controlled mutations, recording which target node each source
node became.

Supported mutations (each applied independently, probability-driven from
a seeded RNG):

- **rename** -- replace a node's label using a caller-supplied rename
  function (the datasets wire in synonym / abbreviation / acronym
  renames from the bundled thesaurus) or a random-suffix fallback;
- **retype** -- replace a leaf's type with a related type (via the
  property lattice's notion of generalization) or a random one;
- **drop** -- delete a leaf (the source node then has no gold image);
- **add** -- insert a fresh noise leaf (the target node has no gold
  pre-image);
- **shuffle** -- permute the children of an interior node (perturbs the
  ``order`` property and sibling positions);
- **wrap** -- push an interior node's element children one level down
  under a fresh intermediate node (perturbs the level axis, like
  ``PurchaseInfo`` in the paper's PO example).

:meth:`SchemaMutator.mutate` returns the mutated tree *and* the gold
mapping as ``(source_path, target_path)`` pairs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.xsd.model import NodeKind, SchemaNode, SchemaTree


@dataclass
class MutationConfig:
    """Mutation probabilities; all default to "off" except renames."""

    seed: int = 0
    rename_probability: float = 0.3
    retype_probability: float = 0.0
    drop_probability: float = 0.0
    add_probability: float = 0.0
    shuffle_probability: float = 0.0
    wrap_probability: float = 0.0


class SchemaMutator:
    """Applies a :class:`MutationConfig` to a tree, tracking the gold map.

    Parameters
    ----------
    config:
        The mutation probabilities and RNG seed.
    rename:
        Optional ``rename(name, rng) -> str`` callable used for the
        rename mutation.  When omitted, names get a ``Alt`` suffix --
        enough to exercise relaxed label matches via string metrics.
    type_pool:
        Types used by the retype and add mutations.
    """

    def __init__(self, config: MutationConfig, rename=None, type_pool=None):
        self.config = config
        self._rename = rename or _default_rename
        self._type_pool = tuple(type_pool or ("string", "integer", "decimal", "date"))

    def mutate(self, tree: SchemaTree, name=None):
        """Return ``(mutated_tree, gold_pairs)``.

        ``gold_pairs`` is a list of ``(source_path, target_path)`` tuples
        covering every source node that survived into the target.
        """
        rng = random.Random(self.config.seed)
        clone_of = {}
        clone_root = _copy_with_memo(tree.root, clone_of)
        mutated = SchemaTree(
            clone_root,
            name=name or f"{tree.name}-mutated",
            domain=tree.domain,
            target_namespace=tree.target_namespace,
        )

        dropped = self._apply_drops(mutated, rng)
        self._apply_renames(mutated, rng)
        self._apply_retypes(mutated, rng)
        self._apply_shuffles(mutated, rng)
        self._apply_wraps(mutated, rng)
        self._apply_adds(mutated, rng)
        _ensure_unique_siblings(mutated.root)
        mutated.validate()

        gold = []
        for source in tree.root.iter_preorder():
            clone = clone_of[id(source)]
            if id(clone) in dropped:
                continue
            gold.append((source.path, clone.path))
        return mutated, gold

    # ------------------------------------------------------------------

    def _apply_drops(self, mutated, rng):
        dropped = set()
        if self.config.drop_probability <= 0:
            return dropped
        for node in list(mutated.root.iter_preorder()):
            if node.parent is None or not node.is_leaf:
                continue
            if len(node.parent.children) <= 1:
                continue  # keep interior nodes interior
            if rng.random() < self.config.drop_probability:
                node.parent.remove_child(node)
                dropped.add(id(node))
        return dropped

    def _apply_renames(self, mutated, rng):
        if self.config.rename_probability <= 0:
            return
        for node in mutated.root.iter_preorder():
            if rng.random() < self.config.rename_probability:
                node.name = self._rename(node.name, rng)

    def _apply_retypes(self, mutated, rng):
        if self.config.retype_probability <= 0:
            return
        for node in mutated.root.iter_preorder():
            if not node.is_leaf or node.type_name is None:
                continue
            if rng.random() < self.config.retype_probability:
                choices = [t for t in self._type_pool if t != node.type_name]
                node.type_name = rng.choice(choices)

    def _apply_shuffles(self, mutated, rng):
        if self.config.shuffle_probability <= 0:
            return
        for node in mutated.root.iter_preorder():
            if len(node.children) > 1 and rng.random() < self.config.shuffle_probability:
                order = list(node.children)
                rng.shuffle(order)
                node.children[:] = order
                node._renumber_children()

    def _apply_wraps(self, mutated, rng):
        if self.config.wrap_probability <= 0:
            return
        for node in list(mutated.root.iter_preorder()):
            elements = [c for c in node.children if not c.is_attribute]
            if len(elements) < 2 or rng.random() >= self.config.wrap_probability:
                continue
            wrapper = SchemaNode(f"{node.name}Info", kind=NodeKind.ELEMENT)
            for child in elements:
                node.remove_child(child)
            node.add_child(wrapper)
            for child in elements:
                wrapper.add_child(child)

    def _apply_adds(self, mutated, rng):
        if self.config.add_probability <= 0:
            return
        counter = 0
        for node in list(mutated.root.iter_preorder()):
            if node.is_attribute or node.is_leaf:
                continue
            if rng.random() < self.config.add_probability:
                counter += 1
                node.add_child(SchemaNode(
                    f"extra{counter}",
                    type_name=rng.choice(self._type_pool),
                ))


def _copy_with_memo(node, memo) -> SchemaNode:
    clone = SchemaNode(node.name, kind=node.kind, properties=dict(node.properties))
    clone.properties["order"] = None
    memo[id(node)] = clone
    for child in node.children:
        clone.add_child(_copy_with_memo(child, memo))
    return clone


def _ensure_unique_siblings(root):
    """Disambiguate sibling name collisions a rename may have created.

    Node paths are the identity scheme of the whole matching layer, so
    sibling labels must stay unique; colliding names get a numeric
    suffix.
    """
    for node in root.iter_preorder():
        seen = set()
        for child in node.children:
            if child.name in seen:
                suffix = 2
                while f"{child.name}{suffix}" in seen:
                    suffix += 1
                child.name = f"{child.name}{suffix}"
            seen.add(child.name)


def _default_rename(name, rng):
    suffixes = ("Alt", "2", "X", "Info")
    return name + rng.choice(suffixes)
