"""XSD parser: W3C XML Schema documents -> :class:`SchemaTree`.

Built entirely on the standard library's :mod:`xml.etree.ElementTree`
(``lxml`` is intentionally not a dependency).  The parser supports the
subset of XML Schema that schema matchers care about:

- global and local ``xs:element`` declarations, ``ref=`` references;
- named and anonymous ``xs:complexType``, including ``complexContent``
  extension/restriction of a base type and ``simpleContent`` extension;
- named and anonymous ``xs:simpleType`` (restriction, list, union) --
  restrictions contribute their base type and facets as node properties;
- the compositors ``xs:sequence``, ``xs:choice`` and ``xs:all``
  (recorded in the parent's ``compositor`` property; compositor
  occurrence constraints are folded into each particle's occurrence);
- ``xs:attribute`` (local and global), ``xs:attributeGroup`` and
  ``xs:group`` definitions and references;
- ``xs:annotation``/``xs:documentation`` text (kept in the
  ``documentation`` property);
- recursive type definitions, cut off at a configurable depth with the
  ``recursive`` marker property.

The output is the label/properties/children/level view of the schema that
the QMatch taxonomy (paper Section 2.1) is defined over.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path

from repro.xsd.errors import SchemaParseError
from repro.xsd.model import (
    NodeKind,
    SchemaNode,
    SchemaTree,
    occurs_from_str,
)

XSD_NAMESPACE = "http://www.w3.org/2001/XMLSchema"

#: Maximum times a single named type may appear on the expansion stack
#: before recursion is cut off.
DEFAULT_MAX_TYPE_RECURSION = 1


def _tag(local_name):
    return f"{{{XSD_NAMESPACE}}}{local_name}"


def _local(qname):
    """Strip a namespace prefix / Clark-notation namespace from a QName."""
    if qname is None:
        return None
    if qname.startswith("{"):
        return qname.rpartition("}")[2]
    return qname.rpartition(":")[2]


class _SymbolTable:
    """Global named definitions of one schema document."""

    def __init__(self):
        self.elements = {}
        self.complex_types = {}
        self.simple_types = {}
        self.groups = {}
        self.attribute_groups = {}
        self.attributes = {}

    def collect(self, schema_element):
        handlers = {
            _tag("element"): self.elements,
            _tag("complexType"): self.complex_types,
            _tag("simpleType"): self.simple_types,
            _tag("group"): self.groups,
            _tag("attributeGroup"): self.attribute_groups,
            _tag("attribute"): self.attributes,
        }
        for child in schema_element:
            table = handlers.get(child.tag)
            if table is None:
                continue
            name = child.get("name")
            if name is None:
                raise SchemaParseError(
                    f"global {_local(child.tag)} is missing a name"
                )
            if name in table:
                raise SchemaParseError(
                    f"duplicate global {_local(child.tag)} {name!r}"
                )
            table[name] = child


class XsdParser:
    """Stateful parser for one XSD document.

    Parameters
    ----------
    max_type_recursion:
        How many times a named type may recursively contain itself before
        expansion stops (the node is then marked ``recursive=True``).
    resolver:
        Optional ``resolver(schema_location) -> str`` callable returning
        the source text of an ``xs:include`` / ``xs:import`` target.
        When parsing from a file, a resolver reading siblings of that
        file is installed automatically; without a resolver, include /
        import directives raise.
    """

    def __init__(self, max_type_recursion=DEFAULT_MAX_TYPE_RECURSION,
                 resolver=None):
        self.max_type_recursion = max_type_recursion
        self.resolver = resolver
        self._symbols = _SymbolTable()
        self._type_stack = []
        self._included_locations: set[str] = set()

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def parse(self, text, root_element=None, name=None, domain=None,
              location=None) -> SchemaTree:
        """Parse XSD source ``text`` into a schema tree.

        ``root_element`` selects which global element to use as the tree
        root; by default the first global element is used.  ``location``
        is the document's own schemaLocation, registered up front so
        mutually-including schemas terminate.
        """
        try:
            document = ET.fromstring(text)
        except ET.ParseError as exc:
            raise SchemaParseError(f"not well-formed XML: {exc}") from exc
        if document.tag != _tag("schema"):
            raise SchemaParseError(
                f"document root is {document.tag!r}, expected xs:schema"
            )
        self._symbols = _SymbolTable()
        self._included_locations = set()
        if location is not None:
            self._included_locations.add(location)
        self._collect_with_includes(document)
        self._build_substitution_index()
        if not self._symbols.elements:
            raise SchemaParseError("schema declares no global elements")
        if root_element is None:
            declaration = next(iter(self._symbols.elements.values()))
        else:
            declaration = self._symbols.elements.get(root_element)
            if declaration is None:
                raise SchemaParseError(
                    f"no global element named {root_element!r}; "
                    f"available: {sorted(self._symbols.elements)}"
                )
        root = self._parse_element(declaration)
        tree = SchemaTree(
            root,
            name=name or root.name,
            domain=domain,
            target_namespace=document.get("targetNamespace"),
        )
        return tree.validate()

    def _collect_with_includes(self, document):
        """Collect this document's globals, resolving includes first.

        ``xs:include`` and ``xs:import`` are treated alike: the target
        document's global definitions join this document's symbol table
        (matching cares about the combined vocabulary, not namespace
        plumbing).  Each location resolves once, so mutually-including
        schemas terminate.
        """
        for directive in document:
            if directive.tag not in (_tag("include"), _tag("import")):
                continue
            location = directive.get("schemaLocation")
            if location is None:
                continue  # namespace-only import: nothing to load
            if location in self._included_locations:
                continue
            self._included_locations.add(location)
            if self.resolver is None:
                raise SchemaParseError(
                    f"schema includes {location!r} but no resolver is "
                    "configured (parse from a file, or pass resolver=)"
                )
            try:
                text = self.resolver(location)
            except OSError as exc:
                raise SchemaParseError(
                    f"cannot resolve included schema {location!r}: {exc}"
                ) from exc
            try:
                included = ET.fromstring(text)
            except ET.ParseError as exc:
                raise SchemaParseError(
                    f"included schema {location!r} is not well-formed: {exc}"
                ) from exc
            if included.tag != _tag("schema"):
                raise SchemaParseError(
                    f"included document {location!r} is not an xs:schema"
                )
            self._collect_with_includes(included)
        self._symbols.collect(document)

    def _build_substitution_index(self):
        """head element name -> member declarations (transitive).

        Global elements may declare ``substitutionGroup="Head"``: in any
        content model referencing ``Head``, a member may appear instead.
        Members are surfaced as optional siblings of the head (flagged
        ``in_substitution``), which is the view a matcher needs.
        """
        direct: dict[str, list] = {}
        for name, declaration in self._symbols.elements.items():
            head = _local(declaration.get("substitutionGroup"))
            if head is not None:
                direct.setdefault(head, []).append(name)

        self._substitutions: dict[str, list] = {}
        for head in direct:
            members: list = []
            queue = list(direct[head])
            seen = set()
            while queue:
                member = queue.pop()
                if member in seen:
                    continue
                seen.add(member)
                members.append(self._symbols.elements[member])
                queue.extend(direct.get(member, ()))
            self._substitutions[head] = members

    # ------------------------------------------------------------------
    # Elements
    # ------------------------------------------------------------------

    def _parse_element(self, declaration) -> SchemaNode:
        ref = declaration.get("ref")
        if ref is not None:
            target = self._symbols.elements.get(_local(ref))
            if target is None:
                raise SchemaParseError(f"unresolved element ref {ref!r}")
            node = self._parse_element(target)
            self._apply_occurs(node, declaration)
            return node

        element_name = declaration.get("name")
        if element_name is None:
            raise SchemaParseError("element declaration without name or ref")
        node = SchemaNode(element_name, kind=NodeKind.ELEMENT)
        self._apply_occurs(node, declaration)
        if declaration.get("abstract") == "true":
            node.properties["abstract"] = True
        if declaration.get("nillable") == "true":
            node.properties["nillable"] = True
        if declaration.get("default") is not None:
            node.properties["default"] = declaration.get("default")
        if declaration.get("fixed") is not None:
            node.properties["fixed"] = declaration.get("fixed")
        self._attach_documentation(node, declaration)

        type_ref = _local(declaration.get("type"))
        inline_complex = declaration.find(_tag("complexType"))
        inline_simple = declaration.find(_tag("simpleType"))

        if type_ref is not None:
            self._resolve_type_reference(node, type_ref)
        elif inline_complex is not None:
            self._parse_complex_type(node, inline_complex)
        elif inline_simple is not None:
            self._parse_simple_type(node, inline_simple)
        else:
            node.type_name = None  # anyType
        return node

    def _apply_occurs(self, node, declaration):
        if declaration.get("minOccurs") is not None:
            node.min_occurs = occurs_from_str(declaration.get("minOccurs"))
        if declaration.get("maxOccurs") is not None:
            node.max_occurs = occurs_from_str(declaration.get("maxOccurs"))

    def _attach_documentation(self, node, declaration):
        annotation = declaration.find(_tag("annotation"))
        if annotation is None:
            return
        docs = [
            (doc.text or "").strip()
            for doc in annotation.findall(_tag("documentation"))
        ]
        text = " ".join(part for part in docs if part)
        if text:
            node.properties["documentation"] = text

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------

    def _resolve_type_reference(self, node, type_name):
        if type_name in self._symbols.complex_types:
            depth = self._type_stack.count(type_name)
            if depth > self.max_type_recursion:
                node.type_name = type_name
                node.properties["recursive"] = True
                return
            self._type_stack.append(type_name)
            try:
                self._parse_complex_type(
                    node, self._symbols.complex_types[type_name]
                )
                node.type_name = type_name
            finally:
                self._type_stack.pop()
        elif type_name in self._symbols.simple_types:
            self._parse_simple_type(node, self._symbols.simple_types[type_name])
            node.properties.setdefault("type_alias", type_name)
        else:
            # Built-in XSD type (string, integer, date, ...).
            node.type_name = type_name

    def _parse_complex_type(self, node, definition):
        node.type_name = definition.get("name") or node.type_name
        if definition.get("mixed") == "true":
            node.properties["mixed"] = True
        for child in definition:
            if child.tag in (_tag("sequence"), _tag("choice"), _tag("all")):
                self._parse_compositor(node, child)
            elif child.tag == _tag("attribute"):
                node.add_child(self._parse_attribute(child))
            elif child.tag == _tag("attributeGroup"):
                self._expand_attribute_group(node, child)
            elif child.tag == _tag("group"):
                self._expand_group(node, child)
            elif child.tag == _tag("complexContent"):
                self._parse_complex_content(node, child)
            elif child.tag == _tag("simpleContent"):
                self._parse_simple_content(node, child)
            elif child.tag == _tag("annotation"):
                self._attach_documentation(node, definition)
            elif child.tag == _tag("anyAttribute"):
                node.properties["any_attribute"] = True
            else:
                raise SchemaParseError(
                    f"unsupported construct {_local(child.tag)!r} in "
                    f"complexType of {node.name!r}"
                )

    def _parse_complex_content(self, node, content):
        extension = content.find(_tag("extension"))
        restriction = content.find(_tag("restriction"))
        body = extension if extension is not None else restriction
        if body is None:
            raise SchemaParseError(
                f"complexContent of {node.name!r} has neither extension "
                "nor restriction"
            )
        base = _local(body.get("base"))
        if base is None:
            raise SchemaParseError(
                f"complexContent derivation in {node.name!r} is missing base"
            )
        if extension is not None and base in self._symbols.complex_types:
            # Extension: base particles first, then the extension's own.
            depth = self._type_stack.count(base)
            if depth <= self.max_type_recursion:
                self._type_stack.append(base)
                try:
                    self._parse_complex_type(
                        node, self._symbols.complex_types[base]
                    )
                finally:
                    self._type_stack.pop()
        node.properties["base_type"] = base
        node.properties["derivation"] = (
            "extension" if extension is not None else "restriction"
        )
        if restriction is not None:
            # Restriction redefines the content model from scratch.
            for child in list(node.children):
                node.remove_child(child)
        for child in body:
            if child.tag in (_tag("sequence"), _tag("choice"), _tag("all")):
                self._parse_compositor(node, child)
            elif child.tag == _tag("attribute"):
                node.add_child(self._parse_attribute(child))
            elif child.tag == _tag("attributeGroup"):
                self._expand_attribute_group(node, child)
            elif child.tag == _tag("group"):
                self._expand_group(node, child)

    def _parse_simple_content(self, node, content):
        body = content.find(_tag("extension"))
        if body is None:
            body = content.find(_tag("restriction"))
        if body is None:
            raise SchemaParseError(
                f"simpleContent of {node.name!r} has neither extension "
                "nor restriction"
            )
        node.type_name = _local(body.get("base"))
        for child in body:
            if child.tag == _tag("attribute"):
                node.add_child(self._parse_attribute(child))
            elif child.tag == _tag("attributeGroup"):
                self._expand_attribute_group(node, child)

    def _parse_simple_type(self, node, definition):
        restriction = definition.find(_tag("restriction"))
        union = definition.find(_tag("union"))
        list_def = definition.find(_tag("list"))
        if restriction is not None:
            node.type_name = _local(restriction.get("base"))
            facets = {}
            for facet in restriction:
                facet_name = _local(facet.tag)
                if facet_name == "enumeration":
                    facets.setdefault("enumeration", []).append(facet.get("value"))
                elif facet.get("value") is not None:
                    facets[facet_name] = facet.get("value")
            if facets:
                node.properties["facets"] = facets
        elif union is not None:
            members = union.get("memberTypes", "")
            node.type_name = "union"
            node.properties["member_types"] = [
                _local(member) for member in members.split() if member
            ]
        elif list_def is not None:
            node.type_name = "list"
            node.properties["item_type"] = _local(list_def.get("itemType"))
        else:
            raise SchemaParseError(
                f"simpleType of {node.name!r} has no restriction/union/list"
            )

    # ------------------------------------------------------------------
    # Particles
    # ------------------------------------------------------------------

    def _parse_compositor(self, node, compositor, outer_min=1, outer_max=1):
        node.properties.setdefault("compositor", _local(compositor.tag))
        comp_min = occurs_from_str(compositor.get("minOccurs", "1")) * outer_min
        comp_max = _multiply_occurs(
            occurs_from_str(compositor.get("maxOccurs", "1")), outer_max
        )
        is_choice = compositor.tag == _tag("choice")
        for particle in compositor:
            if particle.tag == _tag("element"):
                child = self._parse_element(particle)
                child.min_occurs = (
                    0 if is_choice else child.min_occurs * comp_min
                )
                child.max_occurs = _multiply_occurs(child.max_occurs, comp_max)
                if is_choice:
                    child.properties["in_choice"] = True
                node.add_child(child)
                # Substitution-group members may stand in for a
                # referenced head element; surface them as optional
                # siblings so matchers see the real vocabulary.
                head = _local(particle.get("ref"))
                for member in getattr(self, "_substitutions", {}).get(
                    head, ()
                ):
                    member_node = self._parse_element(member)
                    member_node.min_occurs = 0
                    # A member stands in at the head's cardinality.
                    member_node.max_occurs = child.max_occurs
                    member_node.properties["in_substitution"] = head
                    node.add_child(member_node)
            elif particle.tag in (_tag("sequence"), _tag("choice"), _tag("all")):
                self._parse_compositor(node, particle, comp_min, comp_max)
            elif particle.tag == _tag("group"):
                self._expand_group(node, particle)
            elif particle.tag == _tag("any"):
                node.properties["any_element"] = True
            elif particle.tag == _tag("annotation"):
                continue
            else:
                raise SchemaParseError(
                    f"unsupported particle {_local(particle.tag)!r} under "
                    f"{node.name!r}"
                )

    def _expand_group(self, node, reference):
        ref = _local(reference.get("ref"))
        if ref is None:
            raise SchemaParseError(f"group under {node.name!r} lacks ref")
        definition = self._symbols.groups.get(ref)
        if definition is None:
            raise SchemaParseError(f"unresolved group ref {ref!r}")
        for child in definition:
            if child.tag in (_tag("sequence"), _tag("choice"), _tag("all")):
                self._parse_compositor(node, child)

    def _expand_attribute_group(self, node, reference):
        ref = _local(reference.get("ref"))
        if ref is None:
            raise SchemaParseError(f"attributeGroup under {node.name!r} lacks ref")
        definition = self._symbols.attribute_groups.get(ref)
        if definition is None:
            raise SchemaParseError(f"unresolved attributeGroup ref {ref!r}")
        for child in definition:
            if child.tag == _tag("attribute"):
                node.add_child(self._parse_attribute(child))
            elif child.tag == _tag("attributeGroup"):
                self._expand_attribute_group(node, child)

    # ------------------------------------------------------------------
    # Attributes
    # ------------------------------------------------------------------

    def _parse_attribute(self, declaration) -> SchemaNode:
        ref = declaration.get("ref")
        if ref is not None:
            target = self._symbols.attributes.get(_local(ref))
            if target is None:
                raise SchemaParseError(f"unresolved attribute ref {ref!r}")
            node = self._parse_attribute(target)
        else:
            attr_name = declaration.get("name")
            if attr_name is None:
                raise SchemaParseError("attribute declaration without name or ref")
            node = SchemaNode(attr_name, kind=NodeKind.ATTRIBUTE)
            type_ref = _local(declaration.get("type"))
            inline_simple = declaration.find(_tag("simpleType"))
            if type_ref is not None:
                if type_ref in self._symbols.simple_types:
                    self._parse_simple_type(
                        node, self._symbols.simple_types[type_ref]
                    )
                    node.properties.setdefault("type_alias", type_ref)
                else:
                    node.type_name = type_ref
            elif inline_simple is not None:
                self._parse_simple_type(node, inline_simple)
            else:
                node.type_name = "string"
            self._attach_documentation(node, declaration)
        use = declaration.get("use", "optional")
        node.properties["use"] = use
        node.min_occurs = 1 if use == "required" else 0
        node.max_occurs = 1
        if declaration.get("default") is not None:
            node.properties["default"] = declaration.get("default")
        if declaration.get("fixed") is not None:
            node.properties["fixed"] = declaration.get("fixed")
        return node


def _multiply_occurs(left, right):
    from repro.xsd.model import UNBOUNDED

    if left == UNBOUNDED or right == UNBOUNDED:
        return UNBOUNDED
    return left * right


def parse_xsd(text, root_element=None, name=None, domain=None,
              max_type_recursion=DEFAULT_MAX_TYPE_RECURSION,
              resolver=None, location=None) -> SchemaTree:
    """Parse XSD source text into a :class:`SchemaTree`.

    See :class:`XsdParser` for the supported XSD subset; ``resolver``
    supplies the text of ``xs:include`` / ``xs:import`` targets and
    ``location`` names this document (cycle detection).
    """
    parser = XsdParser(max_type_recursion=max_type_recursion,
                       resolver=resolver)
    return parser.parse(text, root_element=root_element, name=name,
                        domain=domain, location=location)


def parse_xsd_file(path, root_element=None, name=None, domain=None,
                   max_type_recursion=DEFAULT_MAX_TYPE_RECURSION) -> SchemaTree:
    """Parse an XSD file into a :class:`SchemaTree`.

    ``xs:include`` / ``xs:import`` locations resolve relative to the
    file's directory.
    """
    path = Path(path)
    base_dir = path.parent

    def resolver(location):
        return (base_dir / location).read_text(encoding="utf-8")

    text = path.read_text(encoding="utf-8")
    return parse_xsd(
        text,
        root_element=root_element,
        name=name or path.stem,
        domain=domain,
        max_type_recursion=max_type_recursion,
        resolver=resolver,
        location=path.name,
    )
