"""XML Schema substrate: tree model, XSD parser, serializer and generators.

The QMatch paper operates on *schema trees*: every XML-Schema element or
attribute becomes a node carrying a label, a property set (type, order,
minOccurs, maxOccurs, ...), its children and its nesting level.  This
package provides that representation plus everything needed to obtain it:

- :mod:`repro.xsd.model` -- the :class:`SchemaNode` / :class:`SchemaTree`
  data model used by every matcher in the library.
- :mod:`repro.xsd.parser` -- an XSD parser built on the standard library's
  ``xml.etree`` (``lxml`` is deliberately not required).
- :mod:`repro.xsd.serializer` -- writes trees back to XSD and to a compact
  indented text format used in tests and CLI output.
- :mod:`repro.xsd.builder` -- a small fluent builder for constructing
  trees programmatically.
- :mod:`repro.xsd.generator` / :mod:`repro.xsd.mutations` -- deterministic
  synthetic schema generation and controlled mutation (rename, restructure,
  prune, retype) used for the protein-scale experiments.
"""

from repro.xsd.builder import TreeBuilder, attribute, element, tree
from repro.xsd.errors import SchemaParseError, SchemaValidationError
from repro.xsd.generator import GeneratorConfig, SchemaGenerator
from repro.xsd.model import NodeKind, SchemaNode, SchemaTree
from repro.xsd.mutations import MutationConfig, SchemaMutator
from repro.xsd.parser import parse_xsd, parse_xsd_file
from repro.xsd.serializer import to_compact_text, to_xsd

__all__ = [
    "GeneratorConfig",
    "MutationConfig",
    "NodeKind",
    "SchemaGenerator",
    "SchemaMutator",
    "SchemaNode",
    "SchemaParseError",
    "SchemaTree",
    "SchemaValidationError",
    "TreeBuilder",
    "attribute",
    "element",
    "parse_xsd",
    "parse_xsd_file",
    "to_compact_text",
    "to_xsd",
    "tree",
]
