"""Schema tree model.

This is the data model every matcher in the library operates on.  It
mirrors the information axes the QMatch paper identifies for XML-Schema
elements (Section 2.1):

- the **label** axis -- :attr:`SchemaNode.name`;
- the **properties** axis -- :attr:`SchemaNode.properties`, a mapping that
  always contains ``type``, ``order``, ``min_occurs`` and ``max_occurs``
  and may carry further XSD facets (``use``, ``default``, ``fixed``,
  ``nillable``, ...);
- the **children** axis -- :attr:`SchemaNode.children`, the ordered list
  of sub-elements and attributes;
- the **level** axis -- :attr:`SchemaNode.level`, the nesting depth of the
  node in its tree (root is level 0).

Trees are ordinary mutable Python object graphs; :class:`SchemaTree` adds
tree-wide conveniences (size, depth, lookup by path) and the validation
pass used by the parser and the generators.
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Iterator, Optional

from repro.xsd.errors import SchemaValidationError

#: ``max_occurs`` value representing XSD ``unbounded``.
UNBOUNDED = -1

#: Property keys that every node is guaranteed to carry.
CORE_PROPERTIES = ("type", "order", "min_occurs", "max_occurs")


class NodeKind(enum.Enum):
    """Whether a node came from an XSD element or an attribute."""

    ELEMENT = "element"
    ATTRIBUTE = "attribute"

    def __str__(self):
        return self.value


class SchemaNode:
    """One node of a schema tree: an element or attribute declaration.

    Parameters
    ----------
    name:
        The label of the node (the XSD ``name``).
    kind:
        :class:`NodeKind.ELEMENT` or :class:`NodeKind.ATTRIBUTE`.
    type_name:
        The (simple or complex) type name, e.g. ``"string"`` or
        ``"PurchaseOrderType"``.  ``None`` means an anonymous/unspecified
        type; matchers treat it as the most general type.
    min_occurs / max_occurs:
        Occurrence constraints; ``max_occurs`` may be :data:`UNBOUNDED`.
    properties:
        Extra property entries merged on top of the core properties.
    children:
        Initial children, appended via :meth:`add_child` so parent links
        and sibling order stay consistent.
    """

    __slots__ = ("name", "kind", "properties", "children", "parent", "_level")

    def __init__(
        self,
        name,
        kind=NodeKind.ELEMENT,
        type_name=None,
        min_occurs=1,
        max_occurs=1,
        properties=None,
        children=(),
    ):
        if not name or not isinstance(name, str):
            raise SchemaValidationError(f"node name must be a non-empty string, got {name!r}")
        self.name = name
        self.kind = kind
        self.properties = {
            "type": type_name,
            "order": None,  # 1-based position among siblings; set by add_child
            "min_occurs": min_occurs,
            "max_occurs": max_occurs,
        }
        if properties:
            self.properties.update(properties)
        self.children: list[SchemaNode] = []
        self.parent: Optional[SchemaNode] = None
        self._level: Optional[int] = None
        for child in children:
            self.add_child(child)

    # ------------------------------------------------------------------
    # Core properties
    # ------------------------------------------------------------------

    @property
    def type_name(self):
        """The node's declared type name (``properties['type']``)."""
        return self.properties.get("type")

    @type_name.setter
    def type_name(self, value):
        self.properties["type"] = value

    @property
    def order(self):
        """1-based position among siblings (``None`` for a root)."""
        return self.properties.get("order")

    @property
    def min_occurs(self):
        return self.properties.get("min_occurs", 1)

    @min_occurs.setter
    def min_occurs(self, value):
        self.properties["min_occurs"] = value

    @property
    def max_occurs(self):
        return self.properties.get("max_occurs", 1)

    @max_occurs.setter
    def max_occurs(self, value):
        self.properties["max_occurs"] = value

    @property
    def is_leaf(self):
        """True when the node has no children (a basic declaration)."""
        return not self.children

    @property
    def is_attribute(self):
        return self.kind is NodeKind.ATTRIBUTE

    @property
    def level(self):
        """Nesting depth: 0 for a root, parent's level + 1 otherwise.

        Cached; the cache is invalidated whenever the node is re-parented.
        """
        if self._level is None:
            self._level = 0 if self.parent is None else self.parent.level + 1
        return self._level

    @property
    def path(self):
        """Slash-separated label path from the root, e.g. ``PO/Lines/Item``."""
        parts = []
        node = self
        while node is not None:
            parts.append(node.name)
            node = node.parent
        return "/".join(reversed(parts))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_child(self, child, position=None):
        """Append (or insert) ``child`` and fix its parent/order/level.

        Raises :class:`SchemaValidationError` if the child is an ancestor
        of this node (which would create a cycle) or if this node is an
        attribute (attributes are always leaves in XSD).
        """
        if self.is_attribute:
            raise SchemaValidationError(
                f"attribute node {self.name!r} cannot have children"
            )
        ancestor = self
        while ancestor is not None:
            if ancestor is child:
                raise SchemaValidationError(
                    f"adding {child.name!r} under {self.name!r} would create a cycle"
                )
            ancestor = ancestor.parent
        if child.parent is not None:
            child.parent.remove_child(child)
        if position is None:
            self.children.append(child)
        else:
            self.children.insert(position, child)
        child.parent = self
        child._invalidate_level()
        self._renumber_children()
        return child

    def remove_child(self, child):
        """Detach ``child``; re-numbers the remaining siblings."""
        self.children.remove(child)
        child.parent = None
        child._invalidate_level()
        self._renumber_children()
        return child

    def _renumber_children(self):
        for index, child in enumerate(self.children, start=1):
            child.properties["order"] = index

    def _invalidate_level(self):
        self._level = None
        for descendant in self.iter_preorder():
            descendant._level = None

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def iter_preorder(self) -> Iterator["SchemaNode"]:
        """Yield this node then its descendants, depth-first, in order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_postorder(self) -> Iterator["SchemaNode"]:
        """Yield descendants before ancestors (children before parents)."""
        for child in self.children:
            yield from child.iter_postorder()
        yield self

    def iter_leaves(self) -> Iterator["SchemaNode"]:
        """Yield the leaves of the subtree rooted at this node."""
        for node in self.iter_preorder():
            if node.is_leaf:
                yield node

    def find(self, path) -> Optional["SchemaNode"]:
        """Look up a descendant by a label path relative to this node.

        ``node.find("Lines/Item")`` returns the first child named
        ``Lines`` and then its first child named ``Item``; ``None`` when
        any step is missing.
        """
        node = self
        for step in path.split("/"):
            for child in node.children:
                if child.name == step:
                    node = child
                    break
            else:
                return None
        return node

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------

    @property
    def size(self):
        """Number of nodes in the subtree rooted here (self included)."""
        return sum(1 for _ in self.iter_preorder())

    @property
    def height(self):
        """Number of edges on the longest downward path from this node."""
        if self.is_leaf:
            return 0
        return 1 + max(child.height for child in self.children)

    # ------------------------------------------------------------------
    # Copying & comparison
    # ------------------------------------------------------------------

    def copy(self) -> "SchemaNode":
        """Deep copy of the subtree rooted at this node (parent not kept)."""
        clone = SchemaNode(
            self.name,
            kind=self.kind,
            properties=dict(self.properties),
        )
        clone.properties["order"] = None
        for child in self.children:
            clone.add_child(child.copy())
        return clone

    def structurally_equal(self, other) -> bool:
        """True when both subtrees agree on every axis, recursively."""
        if (
            self.name != other.name
            or self.kind is not other.kind
            or self.properties != other.properties
            or len(self.children) != len(other.children)
        ):
            return False
        return all(
            mine.structurally_equal(theirs)
            for mine, theirs in zip(self.children, other.children)
        )

    def __repr__(self):
        type_part = f":{self.type_name}" if self.type_name else ""
        return (
            f"<SchemaNode {self.kind} {self.name}{type_part}"
            f" children={len(self.children)} level={self.level}>"
        )


class SchemaTree:
    """A whole schema: a root node plus metadata.

    Parameters
    ----------
    root:
        The root :class:`SchemaNode`.
    name:
        Human-readable schema name (defaults to the root's label).
    domain:
        Optional domain tag (``"purchase-order"``, ``"protein"``, ...)
        used by the evaluation harness for grouping.
    target_namespace:
        The XSD ``targetNamespace``, if any.
    """

    def __init__(self, root, name=None, domain=None, target_namespace=None):
        if root.parent is not None:
            raise SchemaValidationError(
                f"tree root {root.name!r} must not have a parent"
            )
        self.root = root
        self.name = name or root.name
        self.domain = domain
        self.target_namespace = target_namespace

    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[SchemaNode]:
        return self.root.iter_preorder()

    def __len__(self):
        return self.size

    @property
    def size(self):
        """Total number of nodes (elements + attributes)."""
        return self.root.size

    @property
    def max_depth(self):
        """Maximum nesting level of any node (root = 0)."""
        return self.root.height

    @property
    def leaves(self) -> list[SchemaNode]:
        return list(self.root.iter_leaves())

    def nodes(self, predicate: Optional[Callable[[SchemaNode], bool]] = None):
        """All nodes in preorder, optionally filtered by ``predicate``."""
        if predicate is None:
            return list(self.root.iter_preorder())
        return [node for node in self.root.iter_preorder() if predicate(node)]

    def find(self, path) -> Optional[SchemaNode]:
        """Look up a node by absolute label path (``PO/Lines/Item``).

        The first path step must equal the root's label.
        """
        first, _, rest = path.partition("/")
        if first != self.root.name:
            return None
        if not rest:
            return self.root
        return self.root.find(rest)

    def copy(self) -> "SchemaTree":
        return SchemaTree(
            self.root.copy(),
            name=self.name,
            domain=self.domain,
            target_namespace=self.target_namespace,
        )

    def validate(self):
        """Check tree-wide invariants; raises :class:`SchemaValidationError`.

        Verified invariants:

        - parent/child links are mutually consistent;
        - sibling ``order`` properties are 1..n in document order;
        - occurrence ranges satisfy ``min <= max`` (unless unbounded);
        - attribute nodes are leaves.
        """
        seen = set()
        for node in self.root.iter_preorder():
            if id(node) in seen:
                raise SchemaValidationError(
                    f"node {node.name!r} appears twice in the tree"
                )
            seen.add(id(node))
            for index, child in enumerate(node.children, start=1):
                if child.parent is not node:
                    raise SchemaValidationError(
                        f"child {child.name!r} of {node.name!r} has a stale parent link"
                    )
                if child.properties.get("order") != index:
                    raise SchemaValidationError(
                        f"child {child.name!r} of {node.name!r} has order "
                        f"{child.properties.get('order')!r}, expected {index}"
                    )
            minimum, maximum = node.min_occurs, node.max_occurs
            if maximum != UNBOUNDED and minimum > maximum:
                raise SchemaValidationError(
                    f"node {node.name!r} has min_occurs {minimum} > max_occurs {maximum}"
                )
            if node.is_attribute and node.children:
                raise SchemaValidationError(
                    f"attribute {node.name!r} has children"
                )
        return self

    # ------------------------------------------------------------------

    def pairs_with(self, other: "SchemaTree") -> Iterator[tuple[SchemaNode, SchemaNode]]:
        """Cartesian product of this tree's nodes with ``other``'s nodes.

        Convenience for matchers that build full score matrices.
        """
        return itertools.product(self.root.iter_preorder(), other.root.iter_preorder())

    def __repr__(self):
        return (
            f"<SchemaTree {self.name!r} size={self.size} "
            f"max_depth={self.max_depth} domain={self.domain!r}>"
        )


_XML_NAME_BAD = None  # compiled lazily to keep the import graph light


def xml_name(label: str) -> str:
    """A well-formed XML name for a schema label.

    Schema labels follow the paper's figures and may contain characters
    XML names forbid (``Item#``); anything serializing labels into
    actual XML tags (instances, translation) routes through this.
    Invalid characters become ``_`` and a leading digit is prefixed.
    """
    global _XML_NAME_BAD
    if _XML_NAME_BAD is None:
        import re

        _XML_NAME_BAD = re.compile(r"[^A-Za-z0-9_.\-]")
    cleaned = _XML_NAME_BAD.sub("_", label)
    if not cleaned or cleaned[0].isdigit() or cleaned[0] in ".-":
        cleaned = "_" + cleaned
    return cleaned


def occurs_to_str(value) -> str:
    """Render a ``min_occurs``/``max_occurs`` value for XSD output."""
    return "unbounded" if value == UNBOUNDED else str(value)


def occurs_from_str(text) -> int:
    """Parse an XSD occurrence attribute value."""
    return UNBOUNDED if text == "unbounded" else int(text)
