"""Deterministic synthetic schema generation.

The paper evaluates on two protein schemas (PIR: 231 elements, depth 6;
PDB: 3753 elements, depth 7) that are not publicly archived.  This module
generates schemas with an *exact* requested node count and maximum depth
from a seeded RNG, using a configurable vocabulary, so the scale
experiments (Figure 4/5) run on inputs with the paper's reported
characteristics.

Generation is reproducible: the same :class:`GeneratorConfig` always
yields the same tree.  For *corpus-scale* generation (the segmented
index benchmarks index 100k synthetic schemas), :func:`derive_seed`
expands one master seed into per-schema seeds via blake2b -- so the
whole corpus is byte-for-byte reproducible from a single published
integer -- and :func:`synthetic_corpus_configs` builds the per-schema
configs, each drawing its name vocabulary from a shared pool sized
``~sqrt(count)`` (:func:`vocabulary_pool`).  The pool scaling grows
the *label* space with the corpus: since LSH shingles are whole
normalized labels, MinHash buckets stay sparse as the corpus grows
(a 23-word shared vocabulary would put every schema in every bucket).
Index *tokens*, by contrast, split compound labels into their base
stems, so posting lists stay dense at any scale -- which is exactly
the regime the segmented index's candidate-admission budget
(``max_candidates``) is built for.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.xsd.errors import SchemaValidationError
from repro.xsd.model import NodeKind, SchemaNode, SchemaTree

#: Master seed the committed benchmark corpora are derived from.
CORPUS_MASTER_SEED = 2005

#: Default name vocabulary -- deliberately generic; domain datasets pass
#: their own (see :mod:`repro.datasets.protein`).
DEFAULT_VOCABULARY = (
    "record", "entry", "item", "group", "set", "info", "data", "detail",
    "code", "name", "value", "id", "type", "status", "date", "count",
    "source", "target", "ref", "description", "label", "unit", "note",
)

DEFAULT_TYPE_POOL = (
    "string", "integer", "decimal", "boolean", "date", "dateTime", "anyURI",
)


@dataclass
class GeneratorConfig:
    """Parameters for :class:`SchemaGenerator`.

    ``n_nodes`` and ``max_depth`` are met exactly (an exception is raised
    when they are inconsistent, e.g. fewer nodes than depth requires).
    """

    n_nodes: int
    max_depth: int
    seed: int = 0
    min_children: int = 2
    max_children: int = 6
    attribute_probability: float = 0.15
    compound_name_probability: float = 0.4
    vocabulary: tuple = DEFAULT_VOCABULARY
    type_pool: tuple = DEFAULT_TYPE_POOL
    root_name: str = "Root"
    domain: str = None

    def __post_init__(self):
        if self.n_nodes < self.max_depth + 1:
            raise SchemaValidationError(
                f"cannot fit max_depth {self.max_depth} in {self.n_nodes} nodes"
            )
        if self.max_depth < 1:
            raise SchemaValidationError("max_depth must be at least 1")
        if not 1 <= self.min_children <= self.max_children:
            raise SchemaValidationError(
                "need 1 <= min_children <= max_children"
            )


class SchemaGenerator:
    """Generates schema trees that hit an exact size and depth.

    Strategy: first lay down a *spine* of ``max_depth`` nodes below the
    root so the depth target is met exactly, then repeatedly attach the
    remaining nodes to randomly chosen expandable nodes (those whose
    depth leaves room below ``max_depth``).  Names are drawn from the
    vocabulary (optionally compounded camelCase pairs) and disambiguated
    with numeric suffixes so sibling names stay unique.
    """

    def __init__(self, config: GeneratorConfig):
        self.config = config
        self._rng = random.Random(config.seed)
        self._name_counts = {}

    def generate(self) -> SchemaTree:
        """Build and return a validated tree matching the config exactly."""
        config = self.config
        self._rng = random.Random(config.seed)
        self._name_counts = {}
        root = SchemaNode(config.root_name, type_name=None)
        budget = config.n_nodes - 1

        # Spine: guarantees one path of exactly max_depth edges.
        spine_parent = root
        for _ in range(config.max_depth):
            node = self._make_node(allow_attribute=False)
            spine_parent.add_child(node)
            spine_parent = node
            budget -= 1

        # Everything that may still receive children.
        expandable = [
            node for node in root.iter_preorder()
            if node.level < config.max_depth and not node.is_attribute
        ]
        while budget > 0:
            parent = self._rng.choice(expandable)
            batch = min(
                budget,
                self._rng.randint(config.min_children, config.max_children),
            )
            for _ in range(batch):
                allow_attr = parent.level + 1 <= config.max_depth
                child = self._make_node(allow_attribute=allow_attr)
                parent.add_child(child)
                budget -= 1
                if (
                    not child.is_attribute
                    and child.level < config.max_depth
                ):
                    expandable.append(child)

        self._assign_leaf_types(root)
        tree = SchemaTree(
            root, name=config.root_name, domain=config.domain
        ).validate()
        assert tree.size == config.n_nodes
        assert tree.max_depth == config.max_depth
        return tree

    # ------------------------------------------------------------------

    def _make_node(self, allow_attribute=True) -> SchemaNode:
        config = self.config
        is_attribute = (
            allow_attribute
            and self._rng.random() < config.attribute_probability
        )
        name = self._fresh_name()
        if is_attribute:
            return SchemaNode(
                name,
                kind=NodeKind.ATTRIBUTE,
                type_name=self._rng.choice(config.type_pool),
                min_occurs=self._rng.choice((0, 1)),
                max_occurs=1,
                properties={"use": "optional"},
            )
        max_occurs = self._rng.choice((1, 1, 1, -1))
        return SchemaNode(
            name,
            kind=NodeKind.ELEMENT,
            min_occurs=self._rng.choice((0, 1, 1)),
            max_occurs=max_occurs,
        )

    def _fresh_name(self) -> str:
        config = self.config
        word = self._rng.choice(config.vocabulary)
        if self._rng.random() < config.compound_name_probability:
            second = self._rng.choice(config.vocabulary)
            word = word + second.capitalize()
        count = self._name_counts.get(word, 0)
        self._name_counts[word] = count + 1
        if count:
            return f"{word}{count + 1}"
        return word

    def _assign_leaf_types(self, root):
        for node in root.iter_preorder():
            if node.is_leaf and node.type_name is None:
                node.type_name = self._rng.choice(self.config.type_pool)


# ----------------------------------------------------------------------
# Corpus-scale generation: one master seed -> N reproducible schemas
# ----------------------------------------------------------------------

def derive_seed(master_seed: int, index: int, label: str = "schema") -> int:
    """A per-item seed derived from one master seed, stable forever.

    blake2b over ``label:master_seed:index`` rather than e.g.
    ``master_seed + index`` so derived streams never overlap (schema 1
    of seed 7 is unrelated to schema 0 of seed 8) and never depend on
    Python's salted :func:`hash`.
    """
    material = f"{label}:{master_seed}:{index}".encode("utf-8")
    digest = hashlib.blake2b(material, digest_size=8).digest()
    return int.from_bytes(digest, "little")


def vocabulary_pool(size: int, master_seed: int = CORPUS_MASTER_SEED,
                    ) -> tuple:
    """A deterministic pool of ``size`` distinct compound names.

    Words pair two base-vocabulary stems (camelCase, as real schema
    labels compound) and disambiguate with a numeric suffix once the
    pair space is exhausted; the pairing order is a seeded shuffle so
    different master seeds give different (but reproducible) pools.
    """
    rng = random.Random(derive_seed(master_seed, 0, label="vocab"))
    base = list(DEFAULT_VOCABULARY)
    pairs = [
        first + second.capitalize()
        for first in base for second in base if first != second
    ]
    rng.shuffle(pairs)
    words = []
    suffix = 0
    while len(words) < size:
        chunk = pairs if suffix == 0 else [
            f"{pair}{suffix + 1}" for pair in pairs
        ]
        words.extend(chunk[:size - len(words)])
        suffix += 1
    return tuple(words)


def synthetic_corpus_configs(count: int,
                             master_seed: int = CORPUS_MASTER_SEED,
                             n_nodes: int = 24,
                             max_depth: int = 4,
                             schema_vocab: int = 24,
                             pool: Optional[tuple] = None,
                             ) -> Iterator[GeneratorConfig]:
    """Per-schema configs for a reproducible ``count``-schema corpus.

    Every config is a pure function of ``(master_seed, index)``:
    the schema seed comes from :func:`derive_seed` and its vocabulary
    is a seeded sample of ``schema_vocab`` words from a shared pool
    sized ``max(64, 8 * sqrt(count))`` (unless an explicit ``pool`` is
    given).  Generating the corpus twice -- on different machines, in
    CI -- yields byte-identical schemas for equal indexes; pass an
    explicit ``pool`` to also keep a smaller count a byte-identical
    prefix of a larger one (the default pool scales with ``count``).
    """
    if pool is None:
        pool = vocabulary_pool(
            max(64, int(8 * math.sqrt(count))), master_seed
        )
    for index in range(count):
        seed = derive_seed(master_seed, index)
        vocab_rng = random.Random(derive_seed(master_seed, index,
                                              label="pick"))
        vocabulary = tuple(
            vocab_rng.sample(pool, min(schema_vocab, len(pool)))
        )
        yield GeneratorConfig(
            n_nodes=n_nodes,
            max_depth=max_depth,
            seed=seed,
            vocabulary=vocabulary,
            root_name=f"Synth{index:06d}",
        )
