"""Schema statistics and profiling.

The Table 1 view of a schema -- element counts, depth -- plus the richer
profile an integrator wants before matching: per-kind counts, depth and
fan-out distributions, type usage, and naming-convention hints.  Used by
the Table 1 benchmark and the ``qmatch stats`` CLI command.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.linguistic.tokenizer import tokenize
from repro.xsd.model import SchemaTree


@dataclass(frozen=True)
class SchemaStats:
    """A full profile of one schema tree."""

    name: str
    total_nodes: int
    element_count: int
    attribute_count: int
    leaf_count: int
    inner_count: int
    max_depth: int
    #: depth -> node count
    depth_histogram: dict = field(default_factory=dict)
    #: children-per-inner-node distribution summary
    min_fanout: int = 0
    max_fanout: int = 0
    mean_fanout: float = 0.0
    #: type name -> leaf count (None key for untyped leaves)
    type_histogram: dict = field(default_factory=dict)
    #: tokens per label distribution summary
    mean_label_tokens: float = 0.0
    distinct_labels: int = 0
    repeatable_nodes: int = 0
    optional_nodes: int = 0

    def render(self) -> str:
        lines = [
            f"schema          : {self.name}",
            f"nodes           : {self.total_nodes} "
            f"({self.element_count} elements, {self.attribute_count} attributes)",
            f"leaves / inner  : {self.leaf_count} / {self.inner_count}",
            f"max depth       : {self.max_depth}",
            f"fan-out         : min {self.min_fanout}, "
            f"mean {self.mean_fanout:.1f}, max {self.max_fanout}",
            f"distinct labels : {self.distinct_labels} "
            f"(mean {self.mean_label_tokens:.1f} tokens per label)",
            f"repeatable      : {self.repeatable_nodes} "
            f"(maxOccurs > 1), optional: {self.optional_nodes} (minOccurs = 0)",
            "depth histogram : " + ", ".join(
                f"{depth}:{count}" for depth, count in sorted(
                    self.depth_histogram.items()
                )
            ),
            "types           : " + ", ".join(
                f"{type_name or '(none)'}:{count}"
                for type_name, count in sorted(
                    self.type_histogram.items(),
                    key=lambda item: (-item[1], str(item[0])),
                )
            ),
        ]
        return "\n".join(lines)


def schema_stats(tree: SchemaTree) -> SchemaStats:
    """Profile ``tree``."""
    depth_histogram: Counter = Counter()
    type_histogram: Counter = Counter()
    labels = set()
    token_total = 0
    element_count = attribute_count = leaf_count = 0
    fanouts = []
    repeatable = optional = 0

    for node in tree:
        depth_histogram[node.level] += 1
        labels.add(node.name)
        token_total += len(tokenize(node.name))
        if node.is_attribute:
            attribute_count += 1
        else:
            element_count += 1
        if node.is_leaf:
            leaf_count += 1
            type_histogram[node.type_name] += 1
        else:
            fanouts.append(len(node.children))
        if node.max_occurs != 1:
            repeatable += 1
        if node.min_occurs == 0:
            optional += 1

    total = tree.size
    return SchemaStats(
        name=tree.name,
        total_nodes=total,
        element_count=element_count,
        attribute_count=attribute_count,
        leaf_count=leaf_count,
        inner_count=total - leaf_count,
        max_depth=tree.max_depth,
        depth_histogram=dict(depth_histogram),
        min_fanout=min(fanouts) if fanouts else 0,
        max_fanout=max(fanouts) if fanouts else 0,
        mean_fanout=sum(fanouts) / len(fanouts) if fanouts else 0.0,
        type_histogram=dict(type_histogram),
        mean_label_tokens=token_total / total if total else 0.0,
        distinct_labels=len(labels),
        repeatable_nodes=repeatable,
        optional_nodes=optional,
    )
