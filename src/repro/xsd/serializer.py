"""Serialization of schema trees back to XSD and to a compact text form.

``to_xsd`` produces a self-contained (Russian-doll style, all anonymous
types) XML Schema document that :func:`repro.xsd.parser.parse_xsd` parses
back into an equivalent tree -- round-tripping is covered by property
tests.  ``to_compact_text`` produces the indented one-line-per-node view
used in CLI output, examples and test assertions::

    PO {type=POType}
      OrderNo : integer
      PurchaseInfo
        BillingAddr : string
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from xml.dom import minidom

from repro.xsd.model import SchemaNode, SchemaTree, UNBOUNDED, occurs_to_str

_XS = "xs"
_XSD_URI = "http://www.w3.org/2001/XMLSchema"

#: XSD built-in simple types; anything else is treated as a custom type
#: and therefore *not* emitted as a leaf ``type`` attribute.
BUILTIN_SIMPLE_TYPES = frozenset({
    "string", "normalizedString", "token", "boolean", "decimal", "float",
    "double", "integer", "nonPositiveInteger", "negativeInteger", "long",
    "int", "short", "byte", "nonNegativeInteger", "unsignedLong",
    "unsignedInt", "unsignedShort", "unsignedByte", "positiveInteger",
    "date", "time", "dateTime", "duration", "gYear", "gYearMonth",
    "gMonth", "gMonthDay", "gDay", "anyURI", "QName", "NOTATION",
    "hexBinary", "base64Binary", "ID", "IDREF", "IDREFS", "ENTITY",
    "ENTITIES", "NMTOKEN", "NMTOKENS", "Name", "NCName", "language",
    "anySimpleType", "anyType",
})


def _qualify(local_name):
    return f"{_XS}:{local_name}"


def to_xsd(tree: SchemaTree, pretty=True) -> str:
    """Render a schema tree as an XML Schema document string."""
    ET.register_namespace(_XS, _XSD_URI)
    schema = ET.Element(_qualify("schema"), {f"xmlns:{_XS}": _XSD_URI})
    if tree.target_namespace:
        schema.set("targetNamespace", tree.target_namespace)
        schema.set("elementFormDefault", "qualified")
    schema.append(_element_to_xsd(tree.root, is_root=True))
    text = ET.tostring(schema, encoding="unicode")
    if not pretty:
        return text
    pretty_text = minidom.parseString(text).toprettyxml(indent="  ")
    # minidom puts the XML declaration on its own line; keep it.
    return "\n".join(line for line in pretty_text.splitlines() if line.strip())


def _element_to_xsd(node: SchemaNode, is_root=False) -> ET.Element:
    declaration = ET.Element(_qualify("element"), {"name": node.name})
    if not is_root:
        if node.min_occurs != 1:
            declaration.set("minOccurs", occurs_to_str(node.min_occurs))
        if node.max_occurs != 1:
            declaration.set("maxOccurs", occurs_to_str(node.max_occurs))
    if node.properties.get("nillable"):
        declaration.set("nillable", "true")
    if node.properties.get("default") is not None:
        declaration.set("default", str(node.properties["default"]))
    _append_documentation(declaration, node)

    elements = [child for child in node.children if not child.is_attribute]
    attributes = [child for child in node.children if child.is_attribute]

    if not node.children:
        if node.type_name and node.type_name in BUILTIN_SIMPLE_TYPES:
            declaration.set("type", _qualify(node.type_name))
            _append_facets(declaration, node)
        elif node.type_name:
            # Custom simple type rendered as an anonymous restriction of
            # string so the document stays self-contained.
            simple = ET.SubElement(declaration, _qualify("simpleType"))
            ET.SubElement(
                simple, _qualify("restriction"), {"base": _qualify("string")}
            )
        return declaration

    complex_type = ET.SubElement(declaration, _qualify("complexType"))
    if node.properties.get("mixed"):
        complex_type.set("mixed", "true")
    if elements:
        compositor_name = node.properties.get("compositor", "sequence")
        compositor = ET.SubElement(complex_type, _qualify(compositor_name))
        for child in elements:
            compositor.append(_element_to_xsd(child))
    for child in attributes:
        complex_type.append(_attribute_to_xsd(child))
    return declaration


def _attribute_to_xsd(node: SchemaNode) -> ET.Element:
    attrs = {"name": node.name}
    type_name = node.type_name or "string"
    if type_name in BUILTIN_SIMPLE_TYPES:
        attrs["type"] = _qualify(type_name)
    if node.properties.get("use") == "required":
        attrs["use"] = "required"
    if node.properties.get("default") is not None:
        attrs["default"] = str(node.properties["default"])
    declaration = ET.Element(_qualify("attribute"), attrs)
    if type_name not in BUILTIN_SIMPLE_TYPES:
        simple = ET.SubElement(declaration, _qualify("simpleType"))
        ET.SubElement(
            simple, _qualify("restriction"), {"base": _qualify("string")}
        )
    return declaration


def _append_documentation(declaration, node):
    documentation = node.properties.get("documentation")
    if not documentation:
        return
    annotation = ET.SubElement(declaration, _qualify("annotation"))
    doc = ET.SubElement(annotation, _qualify("documentation"))
    doc.text = documentation


def _append_facets(declaration, node):
    facets = node.properties.get("facets")
    if not facets:
        return
    type_attr = declaration.attrib.pop("type")
    simple = ET.SubElement(declaration, _qualify("simpleType"))
    restriction = ET.SubElement(
        simple, _qualify("restriction"), {"base": type_attr}
    )
    for facet_name, value in facets.items():
        if facet_name == "enumeration":
            for entry in value:
                ET.SubElement(
                    restriction, _qualify("enumeration"), {"value": entry}
                )
        else:
            ET.SubElement(restriction, _qualify(facet_name), {"value": str(value)})


def to_compact_text(tree: SchemaTree, show_properties=False) -> str:
    """Render a tree as indented text, one node per line.

    With ``show_properties=True`` each line carries the non-default
    property entries in ``{key=value}`` form; otherwise only the type is
    shown (``Name : type``).
    """
    lines = []
    _compact_lines(tree.root, 0, lines, show_properties)
    return "\n".join(lines)


def _compact_lines(node, indent, lines, show_properties):
    marker = "@" if node.is_attribute else ""
    text = f"{'  ' * indent}{marker}{node.name}"
    if node.type_name:
        text += f" : {node.type_name}"
    if show_properties:
        extras = _interesting_properties(node)
        if extras:
            rendered = ", ".join(f"{key}={value}" for key, value in extras)
            text += f" {{{rendered}}}"
    lines.append(text)
    for child in node.children:
        _compact_lines(child, indent + 1, lines, show_properties)


def _interesting_properties(node):
    skip = {"type", "order"}
    defaults = {"min_occurs": 1 if not node.is_attribute else None,
                "max_occurs": 1}
    extras = []
    for key in sorted(node.properties):
        if key in skip:
            continue
        value = node.properties[key]
        if value is None or value == defaults.get(key):
            continue
        if key == "max_occurs" and value == UNBOUNDED:
            value = "unbounded"
        extras.append((key, value))
    return extras
