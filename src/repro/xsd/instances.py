"""XML instances: generate sample documents from a schema tree and
validate documents against one.

Matching is a means to an end -- querying and translating the actual
XML documents (the paper's introduction).  This module provides the
document side:

- :func:`generate_instance` -- a seeded sample document conforming to a
  schema tree: occurrence constraints respected (unbounded capped at a
  configurable repeat count), attributes emitted, and leaf values
  synthesized from the XSD type (and honoring enumeration facets);
- :func:`validate_instance` -- structural validation of an element tree
  against a schema tree: element names and order-agnostic membership,
  occurrence counts, required attributes, and value/type shape checks
  for the common built-in types.  Returns the list of violations
  (empty = valid).
"""

from __future__ import annotations

import random
import re
import xml.etree.ElementTree as ET
from dataclasses import dataclass

from repro.xsd.model import SchemaNode, SchemaTree, UNBOUNDED, xml_name

#: Words used when synthesizing string values.
_SAMPLE_WORDS = (
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
    "hotel", "india", "juliet", "kilo", "lima",
)

_TYPE_PATTERNS = {
    "integer": re.compile(r"^[+-]?\d+$"),
    "int": re.compile(r"^[+-]?\d+$"),
    "long": re.compile(r"^[+-]?\d+$"),
    "short": re.compile(r"^[+-]?\d+$"),
    "byte": re.compile(r"^[+-]?\d+$"),
    "nonNegativeInteger": re.compile(r"^\+?\d+$"),
    "positiveInteger": re.compile(r"^\+?\d+$"),
    "decimal": re.compile(r"^[+-]?\d+(\.\d+)?$"),
    "float": re.compile(r"^[+-]?\d+(\.\d+)?([eE][+-]?\d+)?$"),
    "double": re.compile(r"^[+-]?\d+(\.\d+)?([eE][+-]?\d+)?$"),
    "boolean": re.compile(r"^(true|false|0|1)$"),
    "date": re.compile(r"^\d{4}-\d{2}-\d{2}$"),
    "dateTime": re.compile(r"^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}"),
    "time": re.compile(r"^\d{2}:\d{2}:\d{2}"),
    "gYear": re.compile(r"^\d{4}$"),
    "anyURI": re.compile(r"^\S+$"),
}


@dataclass(frozen=True)
class InstanceConfig:
    """Generation knobs."""

    seed: int = 0
    #: Repeats used for ``maxOccurs='unbounded'`` (and caps large maxima).
    max_repeats: int = 3
    #: Probability that an optional particle (minOccurs=0) is emitted.
    optional_probability: float = 0.7


def generate_instance(tree: SchemaTree, config: InstanceConfig = None) -> ET.Element:
    """Build a sample :class:`xml.etree.ElementTree.Element` for ``tree``."""
    config = config or InstanceConfig()
    rng = random.Random(config.seed)
    return _build_element(tree.root, rng, config)


def generate_instance_text(tree: SchemaTree, config: InstanceConfig = None) -> str:
    """The sample document as an indented XML string."""
    element = generate_instance(tree, config)
    ET.indent(element)
    return ET.tostring(element, encoding="unicode")


def _build_element(node: SchemaNode, rng, config) -> ET.Element:
    element = ET.Element(xml_name(node.name))
    attributes = [c for c in node.children if c.is_attribute]
    children = [c for c in node.children if not c.is_attribute]
    for attribute in attributes:
        required = attribute.properties.get("use") == "required"
        if required or rng.random() < config.optional_probability:
            element.set(xml_name(attribute.name), _sample_value(attribute, rng))
    if not children:
        element.text = _sample_value(node, rng)
        return element
    for child in children:
        for _ in range(_repeat_count(child, rng, config)):
            element.append(_build_element(child, rng, config))
    return element


def _repeat_count(node: SchemaNode, rng, config) -> int:
    minimum = max(0, node.min_occurs)
    maximum = node.max_occurs
    if maximum == UNBOUNDED:
        maximum = max(minimum, config.max_repeats)
    maximum = min(maximum, max(minimum, config.max_repeats))
    if minimum == 0 and rng.random() >= config.optional_probability:
        return 0
    if maximum <= minimum:
        return minimum
    return rng.randint(max(minimum, 1), maximum)


def _sample_value(node: SchemaNode, rng) -> str:
    facets = node.properties.get("facets") or {}
    enumeration = facets.get("enumeration")
    if enumeration:
        return rng.choice(enumeration)
    type_name = node.type_name or "string"
    if type_name in ("integer", "int", "long", "short", "byte"):
        return str(rng.randint(1, 9999))
    if type_name in ("nonNegativeInteger", "positiveInteger"):
        return str(rng.randint(1, 9999))
    if type_name == "decimal":
        return f"{rng.randint(1, 999)}.{rng.randint(0, 99):02d}"
    if type_name in ("float", "double"):
        return f"{rng.uniform(0, 1000):.4f}"
    if type_name == "boolean":
        return rng.choice(("true", "false"))
    if type_name == "date":
        return f"{rng.randint(2000, 2026)}-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}"
    if type_name == "dateTime":
        return (
            f"{rng.randint(2000, 2026)}-{rng.randint(1, 12):02d}-"
            f"{rng.randint(1, 28):02d}T{rng.randint(0, 23):02d}:"
            f"{rng.randint(0, 59):02d}:{rng.randint(0, 59):02d}"
        )
    if type_name == "time":
        return f"{rng.randint(0, 23):02d}:{rng.randint(0, 59):02d}:00"
    if type_name == "gYear":
        return str(rng.randint(1980, 2026))
    if type_name == "anyURI":
        return f"https://example.org/{rng.choice(_SAMPLE_WORDS)}"
    if type_name == "ID":
        return f"id{rng.randint(1000, 9999)}"
    if type_name == "language":
        return rng.choice(("en", "de", "fr", "th"))
    return f"{rng.choice(_SAMPLE_WORDS)} {rng.choice(_SAMPLE_WORDS)}"


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------

def validate_instance(tree: SchemaTree, element: ET.Element) -> list[str]:
    """Check ``element`` against ``tree``; returns violation messages."""
    violations = []
    if element.tag != xml_name(tree.root.name):
        violations.append(
            f"root element is <{element.tag}>, "
            f"expected <{xml_name(tree.root.name)}>"
        )
        return violations
    _validate_element(tree.root, element, violations)
    return violations


def is_valid_instance(tree: SchemaTree, element: ET.Element) -> bool:
    return not validate_instance(tree, element)


def _validate_element(node: SchemaNode, element: ET.Element, violations):
    path = node.path
    attributes = {xml_name(c.name): c for c in node.children if c.is_attribute}
    children = {xml_name(c.name): c for c in node.children if not c.is_attribute}

    # Attributes.
    for attr_name, attr_node in attributes.items():
        if attr_node.properties.get("use") == "required" and \
                attr_name not in element.attrib:
            violations.append(f"{path}: missing required attribute {attr_name!r}")
    for attr_name, value in element.attrib.items():
        attr_node = attributes.get(attr_name)
        if attr_node is None:
            violations.append(f"{path}: unexpected attribute {attr_name!r}")
        else:
            _validate_value(attr_node, value, violations)

    if not children:
        if len(element) > 0:
            violations.append(
                f"{path}: leaf element has {len(element)} child elements"
            )
        else:
            _validate_value(node, element.text or "", violations)
        return

    # Child occurrence counts.
    counts = {name: 0 for name in children}
    for child_element in element:
        child_node = children.get(child_element.tag)
        if child_node is None:
            violations.append(
                f"{path}: unexpected child <{child_element.tag}>"
            )
            continue
        counts[child_element.tag] += 1
        _validate_element(child_node, child_element, violations)
    for name, child_node in children.items():
        count = counts[name]
        if count < child_node.min_occurs:
            violations.append(
                f"{path}: <{name}> occurs {count} time(s), "
                f"minOccurs is {child_node.min_occurs}"
            )
        maximum = child_node.max_occurs
        if maximum != UNBOUNDED and count > maximum:
            violations.append(
                f"{path}: <{name}> occurs {count} time(s), "
                f"maxOccurs is {maximum}"
            )


def _validate_value(node: SchemaNode, value: str, violations):
    facets = node.properties.get("facets") or {}
    enumeration = facets.get("enumeration")
    if enumeration and value not in enumeration:
        violations.append(
            f"{node.path}: value {value!r} not in enumeration {enumeration}"
        )
        return
    pattern = _TYPE_PATTERNS.get(node.type_name or "string")
    if pattern is not None and not pattern.match(value.strip()):
        violations.append(
            f"{node.path}: value {value!r} does not look like "
            f"{node.type_name}"
        )
