"""DTD parser: Document Type Definitions -> :class:`SchemaTree`.

Half the schemas on the 2005-era web were DTDs, not XML Schemas, so a
matcher release needs a DTD front end.  Supported declarations:

- ``<!ELEMENT name (content-model)>`` with sequences (``,``), choices
  (``|``), nested groups, the occurrence suffixes ``?`` / ``*`` / ``+``,
  ``#PCDATA`` (also in mixed content), ``EMPTY`` and ``ANY``;
- ``<!ATTLIST name attr TYPE DEFAULT ...>`` with CDATA / ID / IDREF /
  IDREFS / NMTOKEN(S) / ENTITY / enumerated types and ``#REQUIRED`` /
  ``#IMPLIED`` / ``#FIXED "v"`` / literal defaults;
- comments.

Parameter entities and notations are not expanded (rarely relevant for
matching; a :class:`SchemaParseError` names the construct when hit).

Element types become node types: pure ``#PCDATA`` content maps to
``string``; attribute DTD types map onto the XSD lattice (CDATA ->
string, ID -> ID, ...).  Recursive element references are cut off the
same way the XSD parser cuts recursive types.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.xsd.errors import SchemaParseError
from repro.xsd.model import NodeKind, SchemaNode, SchemaTree, UNBOUNDED

_COMMENT = re.compile(r"<!--.*?-->", re.DOTALL)
_DECLARATION = re.compile(r"<!(ELEMENT|ATTLIST|ENTITY|NOTATION)\s+(.*?)>",
                          re.DOTALL)
_NAME = r"[A-Za-z_:][\w.\-:]*"

_ATTR_TYPE_MAP = {
    "CDATA": "string",
    "ID": "ID",
    "IDREF": "IDREF",
    "IDREFS": "IDREFS",
    "NMTOKEN": "NMTOKEN",
    "NMTOKENS": "NMTOKENS",
    "ENTITY": "ENTITY",
    "ENTITIES": "ENTITIES",
}

#: Occurrence suffix -> (min factor, max factor).
_SUFFIX_OCCURS = {
    "?": (0, 1),
    "*": (0, UNBOUNDED),
    "+": (1, UNBOUNDED),
    "": (1, 1),
}


class _ElementDecl:
    def __init__(self, name, content):
        self.name = name
        self.content = content  # parsed content model or "EMPTY"/"ANY"/"PCDATA"
        self.attributes: list[tuple] = []


class _Particle:
    """One parsed content-model item: a name or a group."""

    def __init__(self, kind, value, min_occurs=1, max_occurs=1, separator=None):
        self.kind = kind          # "name" | "group" | "pcdata"
        self.value = value        # element name, or list of particles
        self.min_occurs = min_occurs
        self.max_occurs = max_occurs
        self.separator = separator  # "," or "|" for groups


class _ContentModelParser:
    """Recursive-descent parser for DTD content models."""

    _TOKEN = re.compile(
        rf"\s*(\(|\)|,|\||\?|\*|\+|#PCDATA|{_NAME})"
    )

    def __init__(self, text, element_name):
        self.tokens = self._tokenize(text, element_name)
        self.position = 0
        self.element_name = element_name

    def _tokenize(self, text, element_name):
        tokens = []
        position = 0
        while position < len(text):
            if text[position].isspace():
                position += 1
                continue
            matched = self._TOKEN.match(text, position)
            if not matched:
                raise SchemaParseError(
                    f"cannot tokenize content model of {element_name!r} "
                    f"at ...{text[position:position + 20]!r}"
                )
            tokens.append(matched.group(1))
            position = matched.end()
        return tokens

    def _peek(self):
        return self.tokens[self.position] if self.position < len(self.tokens) else None

    def _next(self):
        token = self._peek()
        if token is None:
            raise SchemaParseError(
                f"unexpected end of content model in {self.element_name!r}"
            )
        self.position += 1
        return token

    def parse(self) -> _Particle:
        particle = self._parse_particle()
        if self._peek() is not None:
            raise SchemaParseError(
                f"trailing tokens in content model of {self.element_name!r}: "
                f"{self.tokens[self.position:]}"
            )
        return particle

    def _parse_particle(self) -> _Particle:
        token = self._next()
        if token == "(":
            particle = self._parse_group()
        elif token == "#PCDATA":
            particle = _Particle("pcdata", None)
        else:
            particle = _Particle("name", token)
        return self._apply_suffix(particle)

    def _parse_group(self) -> _Particle:
        members = [self._parse_particle()]
        separator = None
        while True:
            token = self._next()
            if token == ")":
                break
            if token in (",", "|"):
                if separator is None:
                    separator = token
                elif separator != token:
                    raise SchemaParseError(
                        f"mixed ',' and '|' in one group of "
                        f"{self.element_name!r}"
                    )
                members.append(self._parse_particle())
            else:
                raise SchemaParseError(
                    f"unexpected {token!r} in content model of "
                    f"{self.element_name!r}"
                )
        return _Particle("group", members, separator=separator or ",")

    def _apply_suffix(self, particle) -> _Particle:
        if self._peek() in ("?", "*", "+"):
            suffix = self._next()
            particle.min_occurs, particle.max_occurs = _SUFFIX_OCCURS[suffix]
        return particle


class DtdParser:
    """Stateful parser for one DTD document."""

    def __init__(self, max_recursion=1):
        self.max_recursion = max_recursion
        self._elements: dict[str, _ElementDecl] = {}
        self._stack: list[str] = []

    # ------------------------------------------------------------------

    def parse(self, text, root_element=None, name=None, domain=None) -> SchemaTree:
        text = _COMMENT.sub(" ", text)
        self._collect(text)
        if not self._elements:
            raise SchemaParseError("DTD declares no elements")
        root_name = root_element or self._infer_root()
        declaration = self._elements.get(root_name)
        if declaration is None:
            raise SchemaParseError(
                f"no element named {root_name!r}; "
                f"available: {sorted(self._elements)}"
            )
        root = self._build(declaration)
        tree = SchemaTree(root, name=name or root_name, domain=domain)
        return tree.validate()

    # ------------------------------------------------------------------

    def _collect(self, text):
        for matched in _DECLARATION.finditer(text):
            kind, body = matched.group(1), matched.group(2).strip()
            if kind == "ELEMENT":
                self._collect_element(body)
            elif kind == "ATTLIST":
                self._collect_attlist(body)
            elif kind in ("ENTITY", "NOTATION"):
                raise SchemaParseError(
                    f"unsupported DTD construct <!{kind} ...> "
                    "(parameter entities are not expanded)"
                )

    def _collect_element(self, body):
        parts = body.split(None, 1)
        if len(parts) != 2:
            raise SchemaParseError(f"malformed ELEMENT declaration: {body!r}")
        element_name, model_text = parts
        model_text = model_text.strip()
        existing = self._elements.get(element_name)
        if existing is not None and existing.content is not None:
            raise SchemaParseError(f"duplicate element {element_name!r}")
        if model_text == "EMPTY":
            content = "EMPTY"
        elif model_text == "ANY":
            content = "ANY"
        else:
            particle = _ContentModelParser(model_text, element_name).parse()
            content = particle
        if existing is not None:
            existing.content = content  # upgrade an ATTLIST placeholder
        else:
            self._elements[element_name] = _ElementDecl(element_name, content)

    _ATTDEF = re.compile(
        rf"({_NAME})\s+"                       # attribute name
        rf"(CDATA|IDREFS|IDREF|ID|ENTITY|ENTITIES|NMTOKENS|NMTOKEN"
        rf"|\([^)]*\))\s+"                     # type or enumeration
        r"(#REQUIRED|#IMPLIED|#FIXED\s+(?:\"[^\"]*\"|'[^']*')"
        r"|\"[^\"]*\"|'[^']*')",               # default
        re.DOTALL,
    )

    def _collect_attlist(self, body):
        parts = body.split(None, 1)
        if len(parts) != 2:
            raise SchemaParseError(f"malformed ATTLIST declaration: {body!r}")
        element_name, defs = parts
        declaration = self._elements.get(element_name)
        if declaration is None:
            # DTDs may put ATTLIST before ELEMENT; create a placeholder
            # that the later ELEMENT declaration upgrades.
            declaration = _ElementDecl(element_name, None)
            self._elements[element_name] = declaration
        position = 0
        defs = defs.strip()
        while position < len(defs):
            matched = self._ATTDEF.match(defs, position)
            if not matched:
                raise SchemaParseError(
                    f"malformed attribute definition for {element_name!r} "
                    f"at ...{defs[position:position + 30]!r}"
                )
            declaration.attributes.append(
                (matched.group(1), matched.group(2), matched.group(3))
            )
            position = matched.end()
            while position < len(defs) and defs[position].isspace():
                position += 1

    # ------------------------------------------------------------------

    def _infer_root(self) -> str:
        """The element no other element references (first declared wins)."""
        referenced = set()
        for declaration in self._elements.values():
            if isinstance(declaration.content, _Particle):
                _collect_names(declaration.content, referenced)
        for element_name in self._elements:
            if element_name not in referenced:
                return element_name
        # Fully cyclic DTD: fall back to the first declaration.
        return next(iter(self._elements))

    def _build(self, declaration: _ElementDecl) -> SchemaNode:
        node = SchemaNode(declaration.name, kind=NodeKind.ELEMENT)
        content = declaration.content
        if content is None:
            content = "EMPTY"  # ATTLIST without ELEMENT declaration
        if content == "ANY":
            node.properties["any_element"] = True
        elif content == "EMPTY":
            pass
        elif isinstance(content, _Particle):
            if content.kind == "pcdata":
                node.type_name = "string"
            else:
                self._attach_particle(node, content, 1, 1, in_choice=False)
                if _contains_pcdata(content):
                    node.properties["mixed"] = True
                    node.type_name = "string"
        for attr_name, attr_type, default in declaration.attributes:
            node.add_child(self._build_attribute(attr_name, attr_type, default))
        if node.is_leaf and node.type_name is None and content == "EMPTY":
            node.type_name = "string"
        return node

    def _attach_particle(self, parent, particle, outer_min, outer_max,
                         in_choice):
        if particle.kind == "pcdata":
            return
        if particle.kind == "name":
            target = self._elements.get(particle.value)
            depth = self._stack.count(particle.value)
            if target is not None and depth <= self.max_recursion:
                self._stack.append(particle.value)
                try:
                    child = self._build(target)
                finally:
                    self._stack.pop()
            else:
                child = SchemaNode(particle.value)
                if target is not None:
                    child.properties["recursive"] = True
            child.min_occurs = (
                0 if in_choice else particle.min_occurs * outer_min
            )
            child.max_occurs = _multiply(particle.max_occurs, outer_max)
            if in_choice:
                child.properties["in_choice"] = True
            parent.add_child(child)
            return
        # group
        group_min = particle.min_occurs * outer_min
        group_max = _multiply(particle.max_occurs, outer_max)
        choice = particle.separator == "|"
        parent.properties.setdefault(
            "compositor", "choice" if choice else "sequence"
        )
        for member in particle.value:
            self._attach_particle(
                parent, member, group_min, group_max,
                in_choice=in_choice or choice,
            )

    @staticmethod
    def _build_attribute(attr_name, attr_type, default) -> SchemaNode:
        properties = {}
        if attr_type.startswith("("):
            type_name = "string"
            values = [value.strip() for value in attr_type[1:-1].split("|")]
            properties["facets"] = {"enumeration": values}
        else:
            type_name = _ATTR_TYPE_MAP.get(attr_type, "string")
        default = default.strip()
        if default == "#REQUIRED":
            use, min_occurs = "required", 1
        elif default == "#IMPLIED":
            use, min_occurs = "optional", 0
        elif default.startswith("#FIXED"):
            use, min_occurs = "optional", 0
            properties["fixed"] = default.split(None, 1)[1].strip("\"'")
        else:
            use, min_occurs = "optional", 0
            properties["default"] = default.strip("\"'")
        properties["use"] = use
        return SchemaNode(
            attr_name,
            kind=NodeKind.ATTRIBUTE,
            type_name=type_name,
            min_occurs=min_occurs,
            max_occurs=1,
            properties=properties,
        )


def _collect_names(particle: _Particle, into: set):
    if particle.kind == "name":
        into.add(particle.value)
    elif particle.kind == "group":
        for member in particle.value:
            _collect_names(member, into)


def _contains_pcdata(particle: _Particle) -> bool:
    if particle.kind == "pcdata":
        return True
    if particle.kind == "group":
        return any(_contains_pcdata(member) for member in particle.value)
    return False


def _multiply(left, right):
    if left == UNBOUNDED or right == UNBOUNDED:
        return UNBOUNDED
    return left * right


def parse_dtd(text, root_element=None, name=None, domain=None,
              max_recursion=1) -> SchemaTree:
    """Parse DTD source text into a :class:`SchemaTree`."""
    parser = DtdParser(max_recursion=max_recursion)
    return parser.parse(text, root_element=root_element, name=name,
                        domain=domain)


def parse_dtd_file(path, root_element=None, name=None, domain=None,
                   max_recursion=1) -> SchemaTree:
    """Parse a DTD file into a :class:`SchemaTree`."""
    text = Path(path).read_text(encoding="utf-8")
    return parse_dtd(
        text, root_element=root_element, name=name or Path(path).stem,
        domain=domain, max_recursion=max_recursion,
    )
