"""Threshold selection by leave-one-task-out cross-validation.

Every matcher has an acceptance threshold, and tuning it on the same
pairs it is evaluated on overstates quality.  This module provides the
honest protocol: for each held-out task, pick the threshold that
maximizes mean Overall on the *remaining* tasks, then score the held-out
task at that threshold.  The gap between the tuned-on-everything score
and the cross-validated score measures how much the threshold choice
overfits the evaluation set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.evaluation.harness import MatchTask
from repro.evaluation.metrics import evaluate_against_gold
from repro.matching.base import Matcher

DEFAULT_GRID = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


@dataclass(frozen=True)
class FoldResult:
    """One leave-one-out fold."""

    held_out: str
    chosen_threshold: float
    train_overall: float
    test_overall: float


@dataclass(frozen=True)
class CrossValidationResult:
    """The full protocol's outcome."""

    folds: tuple
    #: Mean held-out Overall (the honest number).
    mean_test_overall: float
    #: Best achievable mean Overall with one threshold tuned on all
    #: tasks at once (the optimistic number).
    oracle_overall: float
    oracle_threshold: float

    @property
    def overfit_gap(self) -> float:
        return self.oracle_overall - self.mean_test_overall


def cross_validate_threshold(
    matcher: Matcher,
    tasks: Sequence[MatchTask],
    grid: Sequence[float] = DEFAULT_GRID,
) -> CrossValidationResult:
    """Run leave-one-task-out threshold selection for ``matcher``.

    Every task needs a gold mapping; at least two tasks are required
    (with one, there is nothing to train on).
    """
    if len(tasks) < 2:
        raise ValueError("cross-validation needs at least two tasks")
    if any(task.gold is None for task in tasks):
        raise ValueError("every task needs a gold mapping")

    # Score every (task, threshold) cell once; selection is re-done per
    # fold over the cached cells.  The matrix is threshold-independent,
    # so one score_matrix per task serves the whole grid.
    scores: dict[tuple[str, float], float] = {}
    for task in tasks:
        matrix = matcher.score_matrix(task.source, task.target)
        for threshold in grid:
            from repro.matching.selection import select_correspondences

            correspondences = select_correspondences(
                matrix,
                strategy=matcher.default_strategy,
                threshold=threshold,
                categories=matcher.categories(matrix),
            )
            pairs = {c.as_tuple() for c in correspondences}
            scores[(task.name, threshold)] = evaluate_against_gold(
                pairs, task.gold
            ).overall

    def mean_overall(task_names, threshold):
        return sum(scores[(name, threshold)] for name in task_names) / len(
            task_names
        )

    names = [task.name for task in tasks]
    folds = []
    for held_out in names:
        train = [name for name in names if name != held_out]
        chosen = max(grid, key=lambda t: (mean_overall(train, t), -t))
        folds.append(FoldResult(
            held_out=held_out,
            chosen_threshold=chosen,
            train_overall=mean_overall(train, chosen),
            test_overall=scores[(held_out, chosen)],
        ))

    oracle_threshold = max(grid, key=lambda t: (mean_overall(names, t), -t))
    return CrossValidationResult(
        folds=tuple(folds),
        mean_test_overall=sum(f.test_overall for f in folds) / len(folds),
        oracle_overall=mean_overall(names, oracle_threshold),
        oracle_threshold=oracle_threshold,
    )
