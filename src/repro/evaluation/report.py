"""Markdown report rendering for evaluation runs.

``render_quality_rows`` (ASCII) serves terminals; this module produces
the markdown equivalent plus a per-task comparative summary, so an
evaluation run can be pasted straight into a PR description or an
EXPERIMENTS-style document (``qmatch evaluate --format markdown``).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.evaluation.harness import EvaluationRow


def render_markdown_table(headers: Sequence[str],
                          rows: Iterable[Sequence]) -> str:
    """A GitHub-flavoured markdown table."""
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_cell(value) for value in row) + " |")
    return "\n".join(lines)


def _cell(value) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_markdown_report(rows: Sequence[EvaluationRow],
                           title: str = "Match-quality evaluation") -> str:
    """Full markdown report: the rows table plus per-task winners."""
    body = [f"## {title}", ""]
    body.append(render_markdown_table(
        ["task", "algorithm", "precision", "recall", "overall", "found",
         "tree QoM", "seconds"],
        [
            (row.task, row.algorithm, row.precision, row.recall,
             row.overall, row.found, row.tree_qom, row.elapsed_seconds)
            for row in rows
        ],
    ))

    by_task: dict[str, list[EvaluationRow]] = {}
    for row in rows:
        by_task.setdefault(row.task, []).append(row)
    summary_lines = []
    for task_name, task_rows in by_task.items():
        scored = [row for row in task_rows if row.overall is not None]
        if not scored:
            continue
        winner = max(scored, key=lambda row: row.overall)
        runners = sorted(
            (row for row in scored if row is not winner),
            key=lambda row: -row.overall,
        )
        if runners:
            margin = winner.overall - runners[0].overall
            summary_lines.append(
                f"- **{task_name}**: `{winner.algorithm}` wins "
                f"(overall {winner.overall:.3f}, +{margin:.3f} over "
                f"`{runners[0].algorithm}`)"
            )
        else:
            summary_lines.append(
                f"- **{task_name}**: `{winner.algorithm}` "
                f"(overall {winner.overall:.3f})"
            )
    if summary_lines:
        body.extend(["", "### Winners", ""])
        body.extend(summary_lines)
    return "\n".join(body)
