"""Gold-standard mappings (the paper's "manually determined real matches").

A :class:`GoldMapping` is a set of primary ``(source_path, target_path)``
pairs, optionally accompanied by *alternates*: different-but-equally-
defensible correspondences that, when predicted, count as covering a
primary pair (the paper's own walk-through matches ``PurchaseInfo`` to
``Purchase Order`` even though the cleaner manual pair is ``PO`` to
``Purchase Order``).  Evaluation semantics live in
:func:`repro.evaluation.metrics.evaluate_against_gold`.

TSV persistence.  A primary pair is two tab-separated label paths; an
alternate line is ``alt`` followed by the alternate pair and the primary
pair it stands in for; ``#`` whole-line comments allowed::

    # PO1 -> PO2
    PO/OrderNo	PurchaseOrder/OrderNo
    PO	PurchaseOrder
    alt	PO/PurchaseInfo	PurchaseOrder	PO	PurchaseOrder
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from repro.xsd.model import SchemaTree


class GoldMappingError(ValueError):
    """Raised for malformed gold files or pairs referencing missing nodes."""


class GoldMapping:
    """An immutable-ish set of real correspondences between two schemas."""

    def __init__(self, pairs: Iterable[tuple] = ()):
        self._pairs: set[tuple[str, str]] = set()
        #: alternate pair -> the primary pair it stands in for.
        self._alternates: dict[tuple[str, str], tuple[str, str]] = {}
        for source_path, target_path in pairs:
            self.add(source_path, target_path)

    def add(self, source_path: str, target_path: str):
        if not source_path or not target_path:
            raise GoldMappingError(
                f"empty path in gold pair ({source_path!r}, {target_path!r})"
            )
        self._pairs.add((source_path, target_path))
        return self

    def add_alternate(self, alternate: tuple, primary: tuple):
        """Register ``alternate`` as equally acceptable for ``primary``.

        ``primary`` must already be a primary pair of this mapping.
        """
        alternate = tuple(alternate)
        primary = tuple(primary)
        if primary not in self._pairs:
            raise GoldMappingError(
                f"alternate {alternate} references unknown primary {primary}"
            )
        if alternate in self._pairs:
            raise GoldMappingError(
                f"alternate {alternate} is already a primary pair"
            )
        self._alternates[alternate] = primary
        return self

    @property
    def alternates(self) -> dict:
        """Alternate pair -> primary pair."""
        return dict(self._alternates)

    @property
    def pairs(self) -> set[tuple[str, str]]:
        return set(self._pairs)

    def __len__(self):
        return len(self._pairs)

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(sorted(self._pairs))

    def __contains__(self, pair):
        return tuple(pair) in self._pairs

    def source_paths(self) -> set[str]:
        return {source for source, _ in self._pairs}

    def target_paths(self) -> set[str]:
        return {target for _, target in self._pairs}

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def verify_against(self, source: SchemaTree, target: SchemaTree):
        """Check every referenced path exists; raises with the full list
        of dangling paths (catches gold/dataset drift in tests)."""
        missing = []
        referenced = sorted(self._pairs) + sorted(self._alternates)
        for source_path, target_path in referenced:
            if source.find(source_path) is None:
                missing.append(f"source: {source_path}")
            if target.find(target_path) is None:
                missing.append(f"target: {target_path}")
        if missing:
            raise GoldMappingError(
                "gold mapping references missing nodes:\n  "
                + "\n  ".join(missing)
            )
        return self

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    @classmethod
    def loads(cls, text: str, source: str = "<string>") -> "GoldMapping":
        mapping = cls()
        alternates = []  # deferred so alt lines may precede their primary
        for line_number, raw_line in enumerate(text.splitlines(), start=1):
            line = raw_line.rstrip()
            # Only whole-line comments: '#' is legal inside labels (the
            # paper's Item# element).
            if not line.strip() or line.lstrip().startswith("#"):
                continue
            fields = [field.strip() for field in line.split("\t")]
            if fields[0] == "alt":
                if len(fields) != 5:
                    raise GoldMappingError(
                        f"{source}:{line_number}: alt lines need "
                        "'alt<TAB>src<TAB>tgt<TAB>primary_src<TAB>primary_tgt'"
                    )
                alternates.append(
                    (line_number, (fields[1], fields[2]), (fields[3], fields[4]))
                )
            elif len(fields) == 2:
                mapping.add(fields[0], fields[1])
            else:
                raise GoldMappingError(
                    f"{source}:{line_number}: expected two tab-separated "
                    f"paths, got {len(fields)} fields"
                )
        for line_number, alternate, primary in alternates:
            try:
                mapping.add_alternate(alternate, primary)
            except GoldMappingError as exc:
                raise GoldMappingError(f"{source}:{line_number}: {exc}") from None
        return mapping

    @classmethod
    def load(cls, path) -> "GoldMapping":
        path = Path(path)
        return cls.loads(path.read_text(encoding="utf-8"), source=str(path))

    def dumps(self) -> str:
        lines = [f"{s}\t{t}" for s, t in self]
        lines.extend(
            f"alt\t{a[0]}\t{a[1]}\t{p[0]}\t{p[1]}"
            for a, p in sorted(self._alternates.items())
        )
        return "\n".join(lines) + "\n"

    def dump(self, path):
        Path(path).write_text(self.dumps(), encoding="utf-8")
        return self
