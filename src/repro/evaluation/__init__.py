"""Evaluation substrate: metrics, gold mappings, harness and tuning.

Implements the paper's Section 5 methodology: precision / recall /
overall against manually determined real matches, a harness driving any
matcher over match tasks, and the weight-tuning sweep behind Table 2.
"""

from repro.evaluation.gold import GoldMapping, GoldMappingError
from repro.evaluation.harness import (
    EvaluationRow,
    MatchTask,
    evaluate_all,
    evaluate_matcher,
    render_quality_rows,
    render_table,
)
from repro.evaluation.crossval import CrossValidationResult, FoldResult, cross_validate_threshold
from repro.evaluation.report import render_markdown_report, render_markdown_table
from repro.evaluation.significance import (
    BootstrapSummary,
    PairedComparison,
    bootstrap_overall,
    compare_algorithms,
)
from repro.evaluation.metrics import (
    MatchQuality,
    evaluate_against_gold,
    evaluate_pairs,
    overall_from_precision_recall,
)
from repro.evaluation.tuning import (
    SweepPoint,
    SweepResult,
    TuningCase,
    sweep_weights,
    weight_grid,
)

__all__ = [
    "BootstrapSummary",
    "EvaluationRow",
    "GoldMapping",
    "GoldMappingError",
    "MatchQuality",
    "MatchTask",
    "PairedComparison",
    "SweepPoint",
    "SweepResult",
    "CrossValidationResult",
    "FoldResult",
    "TuningCase",
    "bootstrap_overall",
    "compare_algorithms",
    "cross_validate_threshold",
    "evaluate_all",
    "evaluate_against_gold",
    "evaluate_matcher",
    "evaluate_pairs",
    "overall_from_precision_recall",
    "render_markdown_report",
    "render_markdown_table",
    "render_quality_rows",
    "render_table",
    "sweep_weights",
    "weight_grid",
]
