"""Evaluation harness: run matchers on schema pairs and score them.

Drives any set of :class:`repro.matching.Matcher` implementations over a
match task (source schema, target schema, gold mapping), producing the
precision / recall / overall numbers of the paper's Section 5 plus simple
ASCII tables for reports and benchmarks.

Matchers may be passed as instances or as registry names (resolved
through :data:`repro.engine.DEFAULT_REGISTRY` by
:func:`resolve_matchers`), and :func:`evaluate_all` can run all matchers
of one task against a *shared* :class:`~repro.engine.context.MatchContext`
(``share_context=True``), so label analysis done by one matcher is a
cache hit for the next.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

from repro.engine.context import MatchContext
from repro.engine.registry import DEFAULT_REGISTRY, MatcherRegistry
from repro.engine.stats import EngineStats
from repro.evaluation.gold import GoldMapping
from repro.evaluation.metrics import MatchQuality, evaluate_against_gold
from repro.matching.base import Matcher
from repro.matching.result import MatchResult
from repro.matching.selection import DEFAULT_THRESHOLD
from repro.xsd.model import SchemaTree


@dataclass(frozen=True)
class MatchTask:
    """One evaluation unit: a schema pair, its gold mapping, a label."""

    name: str
    source: SchemaTree
    target: SchemaTree
    gold: Optional[GoldMapping] = None

    @property
    def total_elements(self) -> int:
        """Combined element count -- the x-axis of the paper's Figure 4."""
        return self.source.size + self.target.size


@dataclass(frozen=True)
class EvaluationRow:
    """One (task, algorithm) outcome."""

    task: str
    algorithm: str
    quality: Optional[MatchQuality]
    found: int
    tree_qom: float
    elapsed_seconds: float

    @property
    def precision(self):
        return self.quality.precision if self.quality else None

    @property
    def recall(self):
        return self.quality.recall if self.quality else None

    @property
    def overall(self):
        return self.quality.overall if self.quality else None


def resolve_matchers(matchers: Iterable[Union[str, Matcher]],
                     registry: Optional[MatcherRegistry] = None,
                     ) -> list[Matcher]:
    """Turn a mixed list of names and instances into matcher instances.

    Strings resolve through ``registry`` (default:
    :data:`~repro.engine.registry.DEFAULT_REGISTRY`); anything else is
    assumed to already be a :class:`Matcher` and passed through.
    """
    registry = registry or DEFAULT_REGISTRY
    return [
        registry.create(matcher) if isinstance(matcher, str) else matcher
        for matcher in matchers
    ]


def evaluate_matcher(task: MatchTask, matcher: Union[str, Matcher],
                     threshold=DEFAULT_THRESHOLD, strategy=None,
                     context: Optional[MatchContext] = None,
                     ) -> tuple[EvaluationRow, MatchResult]:
    """Run one matcher on one task; returns the row and the raw result.

    ``matcher`` may be a registry name.  Pass ``context`` to score
    against an existing :class:`MatchContext` (it must wrap the task's
    schema pair) instead of a fresh one.
    """
    (matcher,) = resolve_matchers([matcher])
    started = time.perf_counter()
    result = matcher.match(
        task.source, task.target, threshold=threshold, strategy=strategy,
        context=context,
    )
    elapsed = time.perf_counter() - started
    quality = None
    if task.gold is not None:
        quality = evaluate_against_gold(result.pairs, task.gold)
    row = EvaluationRow(
        task=task.name,
        algorithm=matcher.name,
        quality=quality,
        found=len(result.correspondences),
        tree_qom=result.tree_qom,
        elapsed_seconds=elapsed,
    )
    return row, result


def evaluate_all(tasks: Iterable[MatchTask],
                 matchers: Sequence[Union[str, Matcher]],
                 threshold=DEFAULT_THRESHOLD, strategy=None,
                 share_context: bool = False,
                 workers: int = 1) -> list[EvaluationRow]:
    """Full cross product of tasks x matchers.

    With ``share_context=True`` all matchers of one task run against a
    single :class:`MatchContext`, so pairwise label / property analysis
    is computed once per task rather than once per (task, matcher).  The
    shared context uses default linguistic / property services; leave it
    off when matchers carry custom thesauri or configs.

    With ``workers > 1`` every (task, matcher) run is fanned out over
    the batch service's worker-process pool instead of running serially
    in-process (see :class:`repro.service.runner.BatchRunner`).  That
    path requires registry *names* (specs cross a process boundary) and
    is mutually exclusive with ``share_context`` (contexts cannot be
    shared across processes).
    """
    tasks = list(tasks)
    if workers > 1:
        if share_context:
            raise ValueError(
                "share_context and workers>1 are mutually exclusive: a "
                "MatchContext cannot be shared across worker processes"
            )
        return _evaluate_all_parallel(
            tasks, matchers, threshold=threshold, strategy=strategy,
            workers=workers,
        )
    matchers = resolve_matchers(matchers)
    rows = []
    for task in tasks:
        context = None
        if share_context:
            context = MatchContext(
                task.source, task.target, stats=EngineStats()
            )
        for matcher in matchers:
            row, _ = evaluate_matcher(
                task, matcher, threshold=threshold, strategy=strategy,
                context=context,
            )
            rows.append(row)
    return rows


def _evaluate_all_parallel(tasks, matchers, threshold, strategy,
                           workers) -> list[EvaluationRow]:
    """Corpus evaluation routed through the batch runner's worker pool.

    A failed or timed-out job degrades to a row with no quality numbers
    (``found=0``) rather than aborting the evaluation -- the batch
    service's graceful-degradation contract.
    """
    from repro.service.jobs import MatchJobSpec
    from repro.service.runner import BatchRunner
    from repro.xsd.serializer import to_xsd

    if not all(isinstance(matcher, str) for matcher in matchers):
        raise ValueError(
            "parallel evaluation requires algorithm registry names, "
            "not matcher instances (job specs cross a process boundary)"
        )
    units = []
    specs = []
    for task in tasks:
        source_xsd = to_xsd(task.source)
        target_xsd = to_xsd(task.target)
        for algorithm in matchers:
            units.append((task, algorithm))
            specs.append(MatchJobSpec(
                source_xsd=source_xsd,
                target_xsd=target_xsd,
                algorithm=algorithm,
                threshold=threshold,
                strategy=strategy,
                label=f"{task.name}:{algorithm}",
                source_name=task.source.name,
                target_name=task.target.name,
            ))
    report = BatchRunner(workers=workers).run(specs)
    rows = []
    for record, (task, algorithm) in zip(report.records, units):
        payload = record.result or {}
        correspondences = payload.get("correspondences", [])
        quality = None
        if task.gold is not None and record.result is not None:
            pairs = {(c["source"], c["target"]) for c in correspondences}
            quality = evaluate_against_gold(pairs, task.gold)
        rows.append(EvaluationRow(
            task=task.name,
            algorithm=algorithm,
            quality=quality,
            found=len(correspondences),
            tree_qom=payload.get("tree_qom", 0.0),
            elapsed_seconds=record.elapsed_seconds,
        ))
    return rows


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

def render_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Minimal fixed-width ASCII table used by benchmarks and the CLI."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_quality_rows(rows: Iterable[EvaluationRow]) -> str:
    """Standard quality report: one line per (task, algorithm)."""
    return render_table(
        ["task", "algorithm", "precision", "recall", "overall", "found",
         "tree QoM", "seconds"],
        [
            (
                row.task, row.algorithm, row.precision, row.recall,
                row.overall, row.found, row.tree_qom, row.elapsed_seconds,
            )
            for row in rows
        ],
    )
