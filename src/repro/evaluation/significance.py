"""Bootstrap confidence intervals for match-quality comparisons.

"Hybrid beats baseline by 0.1 Overall" means little when the gold
mapping has nine pairs.  This module quantifies that uncertainty by
bootstrap resampling the gold pairs: each replicate draws |R| primaries
with replacement and re-scores every algorithm's *fixed* predictions
against the resampled reference.  Besides per-algorithm confidence
intervals, :func:`compare_algorithms` reports how often one algorithm
beats another across replicates -- a paired bootstrap, since both are
scored against the same resample.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.evaluation.gold import GoldMapping


@dataclass(frozen=True)
class BootstrapSummary:
    """One algorithm's Overall under gold resampling."""

    point_estimate: float
    low: float
    high: float
    replicates: int

    def __str__(self):
        return (
            f"{self.point_estimate:.3f} "
            f"[{self.low:.3f}, {self.high:.3f}] ({self.replicates} reps)"
        )


@dataclass(frozen=True)
class PairedComparison:
    """Paired bootstrap of two algorithms on one task."""

    first: BootstrapSummary
    second: BootstrapSummary
    #: Fraction of replicates where the first algorithm's Overall
    #: strictly exceeds the second's.
    win_rate: float
    #: Mean Overall difference (first - second) with its interval.
    delta: float
    delta_low: float
    delta_high: float


def _overall_against(predicted: set, reference: Sequence[tuple],
                     full_primaries: set, alternates: dict) -> float:
    """Overall of fixed predictions vs a resampled reference multiset.

    Duplicated reference pairs (bootstrap draws with replacement) count
    once covered / once missed each, keeping |R| constant.  False
    positives are judged against the *full* gold (a prediction of a real
    pair that merely missed this resample is not an error), so the
    resampling varies the coverage term only.
    """
    covered = 0
    for pair in reference:
        if pair in predicted:
            covered += 1
        else:
            for alternate, primary in alternates.items():
                if primary == pair and alternate in predicted:
                    covered += 1
                    break
    real = len(reference)
    false_positives = sum(
        1 for pair in predicted
        if pair not in full_primaries and pair not in alternates
    )
    if real == 0:
        return 0.0
    return 1.0 - (false_positives + (real - covered)) / real


def bootstrap_overall(predicted: set, gold: GoldMapping,
                      replicates: int = 1000, seed: int = 0,
                      confidence: float = 0.95) -> BootstrapSummary:
    """Percentile bootstrap interval for one algorithm's Overall."""
    primaries = sorted(gold.pairs)
    if not primaries:
        raise ValueError("gold mapping is empty")
    primary_set = set(primaries)
    alternates = gold.alternates
    rng = random.Random(seed)
    samples = []
    for _ in range(replicates):
        reference = [
            primaries[rng.randrange(len(primaries))]
            for _ in range(len(primaries))
        ]
        samples.append(_overall_against(predicted, reference, primary_set,
                                        alternates))
    samples.sort()
    tail = (1.0 - confidence) / 2
    low_index = int(tail * replicates)
    high_index = min(replicates - 1, int((1.0 - tail) * replicates))
    return BootstrapSummary(
        point_estimate=_overall_against(predicted, primaries, primary_set,
                                        alternates),
        low=samples[low_index],
        high=samples[high_index],
        replicates=replicates,
    )


def compare_algorithms(first_predicted: set, second_predicted: set,
                       gold: GoldMapping, replicates: int = 1000,
                       seed: int = 0,
                       confidence: float = 0.95) -> PairedComparison:
    """Paired bootstrap: both prediction sets against the same resamples."""
    primaries = sorted(gold.pairs)
    if not primaries:
        raise ValueError("gold mapping is empty")
    primary_set = set(primaries)
    alternates = gold.alternates
    rng = random.Random(seed)
    first_samples, second_samples, deltas = [], [], []
    for _ in range(replicates):
        reference = [
            primaries[rng.randrange(len(primaries))]
            for _ in range(len(primaries))
        ]
        first_overall = _overall_against(first_predicted, reference,
                                         primary_set, alternates)
        second_overall = _overall_against(second_predicted, reference,
                                          primary_set, alternates)
        first_samples.append(first_overall)
        second_samples.append(second_overall)
        deltas.append(first_overall - second_overall)
    deltas.sort()
    tail = (1.0 - confidence) / 2
    low_index = int(tail * replicates)
    high_index = min(replicates - 1, int((1.0 - tail) * replicates))

    def summarize(samples, predicted):
        ordered = sorted(samples)
        return BootstrapSummary(
            point_estimate=_overall_against(predicted, primaries,
                                            primary_set, alternates),
            low=ordered[low_index],
            high=ordered[high_index],
            replicates=replicates,
        )

    return PairedComparison(
        first=summarize(first_samples, first_predicted),
        second=summarize(second_samples, second_predicted),
        win_rate=sum(1 for delta in deltas if delta > 0) / replicates,
        delta=sum(deltas) / replicates,
        delta_low=deltas[low_index],
        delta_high=deltas[high_index],
    )
