"""Match-quality metrics (paper Section 5, "Algorithm Quality").

Given the manually determined real matches ``R`` and the predicted
matches ``P`` of an algorithm, with true positives ``I = P & R``, false
positives ``F = P - I`` and missed matches ``M = R - I``:

- ``Precision = |I| / |P|``
- ``Recall    = |I| / |R|``
- ``Overall   = 1 - (|F| + |M|) / |R| = Recall * (2 - 1/Precision)``

Overall is the combined measure the paper plots in Figures 5 and 9; it
accounts for the post-match effort of removing false matches and adding
missed ones, and goes *negative* when more than half the predictions are
wrong.  F1 is included as a modern convenience.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class MatchQuality:
    """Precision / recall / overall / F1 plus the underlying counts."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def predicted(self) -> int:
        return self.true_positives + self.false_positives

    @property
    def real(self) -> int:
        return self.true_positives + self.false_negatives

    @property
    def precision(self) -> float:
        if self.predicted == 0:
            return 0.0
        return self.true_positives / self.predicted

    @property
    def recall(self) -> float:
        if self.real == 0:
            return 0.0
        return self.true_positives / self.real

    @property
    def overall(self) -> float:
        """``1 - (|F| + |M|) / |R|``; can be negative (paper Section 5)."""
        if self.real == 0:
            return 0.0
        return 1.0 - (self.false_positives + self.false_negatives) / self.real

    @property
    def f1(self) -> float:
        precision, recall = self.precision, self.recall
        if precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)

    def __str__(self):
        return (
            f"P={self.precision:.3f} R={self.recall:.3f} "
            f"Overall={self.overall:.3f} F1={self.f1:.3f} "
            f"(TP={self.true_positives} FP={self.false_positives} "
            f"FN={self.false_negatives})"
        )


def evaluate_pairs(predicted: Iterable[tuple], real: Iterable[tuple]) -> MatchQuality:
    """Score a predicted pair set against the gold pair set.

    Both arguments are iterables of ``(source_path, target_path)``
    tuples; duplicates are ignored.
    """
    predicted_set = set(predicted)
    real_set = set(real)
    true_positives = len(predicted_set & real_set)
    return MatchQuality(
        true_positives=true_positives,
        false_positives=len(predicted_set) - true_positives,
        false_negatives=len(real_set) - true_positives,
    )


def evaluate_against_gold(predicted: Iterable[tuple], gold) -> MatchQuality:
    """Score predictions against a :class:`~repro.evaluation.gold.GoldMapping`.

    Alternate-aware: a predicted alternate pair covers its primary pair.

    - TP: primary pairs covered by a predicted primary or a predicted
      alternate (each primary counted once);
    - FP: predictions that are neither a primary nor a registered
      alternate (a redundant second prediction for an already-covered
      primary is ignored rather than penalized);
    - FN: primaries left uncovered.
    """
    predicted_set = set(tuple(pair) for pair in predicted)
    primaries = gold.pairs
    alternates = gold.alternates
    covered = set()
    false_positives = 0
    for pair in predicted_set:
        if pair in primaries:
            covered.add(pair)
        elif pair in alternates:
            covered.add(alternates[pair])
        else:
            false_positives += 1
    return MatchQuality(
        true_positives=len(covered),
        false_positives=false_positives,
        false_negatives=len(primaries) - len(covered),
    )


def overall_from_precision_recall(precision: float, recall: float) -> float:
    """The paper's identity ``Overall = Recall * (2 - 1/Precision)``.

    Provided for the identity test; undefined (0) at zero precision.
    """
    if precision == 0:
        return 0.0
    return recall * (2 - 1 / precision)
