"""Weight tuning (the paper's Table 2 experiment).

"To determine optimal values for the different weights, we conducted a
set of experiments that computed the match values for two randomly
selected schemas, for different weight values.  The overall match values
... were compared against expected match values that were manually
determined prior to the experiments."

:func:`sweep_weights` reproduces that methodology: given tuning cases
(schema pair + the expected overall QoM), it grid-searches normalized
weight combinations, scoring each by mean absolute error of the QMatch
root QoM against the expectation, and reports the best combination plus
the per-axis ranges within tolerance of the best (the paper reports such
ranges: label 0.25-0.4, properties/level 0.1-0.2, children 0.3-0.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.config import QMatchConfig
from repro.core.qmatch import QMatchMatcher
from repro.core.weights import AxisWeights
from repro.xsd.model import SchemaTree


@dataclass(frozen=True)
class TuningCase:
    """A schema pair with a manually determined expected overall QoM."""

    name: str
    source: SchemaTree
    target: SchemaTree
    expected_qom: float

    def __post_init__(self):
        if not 0.0 <= self.expected_qom <= 1.0:
            raise ValueError(
                f"expected_qom must be in [0, 1], got {self.expected_qom}"
            )


@dataclass(frozen=True)
class SweepPoint:
    """One grid point's weights and error."""

    weights: AxisWeights
    mean_absolute_error: float


@dataclass(frozen=True)
class SweepResult:
    """Full sweep outcome."""

    best: SweepPoint
    points: tuple
    #: Per-axis (min, max) over grid points within ``tolerance`` of the
    #: best error -- the "ideal ranges" of the paper's discussion.
    good_ranges: dict

    def range_of(self, axis: str) -> tuple:
        return self.good_ranges[axis]


def weight_grid(step: float = 0.1) -> list[AxisWeights]:
    """All axis-weight combinations on a simplex grid with ``step``.

    Every returned combination has positive label and children weights
    (a hybrid matcher without either axis is degenerate) and sums to 1.
    """
    if not 0.0 < step <= 0.5:
        raise ValueError(f"step must be in (0, 0.5], got {step}")
    divisions = round(1.0 / step)
    grid = []
    for label_ticks in range(1, divisions + 1):
        for properties_ticks in range(0, divisions + 1 - label_ticks):
            for level_ticks in range(
                0, divisions + 1 - label_ticks - properties_ticks
            ):
                children_ticks = (
                    divisions - label_ticks - properties_ticks - level_ticks
                )
                if children_ticks < 1:
                    continue
                grid.append(AxisWeights.normalized(
                    label_ticks, properties_ticks, level_ticks, children_ticks
                ))
    return grid


def sweep_weights(cases: Sequence[TuningCase], step: float = 0.1,
                  tolerance: float = 0.05,
                  linguistic=None, property_matcher=None) -> SweepResult:
    """Grid-search axis weights against expected overall match values."""
    if not cases:
        raise ValueError("need at least one tuning case")
    points = []
    for weights in weight_grid(step):
        matcher = QMatchMatcher(
            config=QMatchConfig(weights=weights, record_categories=False),
            linguistic=linguistic,
            property_matcher=property_matcher,
        )
        error_sum = 0.0
        for case in cases:
            matrix = matcher.score_matrix(case.source, case.target)
            root_qom = matrix.get(case.source.root, case.target.root)
            error_sum += abs(root_qom - case.expected_qom)
        points.append(SweepPoint(
            weights=weights,
            mean_absolute_error=error_sum / len(cases),
        ))
    points.sort(key=lambda p: (p.mean_absolute_error, p.weights.as_tuple()))
    best = points[0]
    cutoff = best.mean_absolute_error + tolerance
    good = [p for p in points if p.mean_absolute_error <= cutoff]
    good_ranges = {
        axis: (
            min(getattr(p.weights, axis) for p in good),
            max(getattr(p.weights, axis) for p in good),
        )
        for axis in ("label", "properties", "level", "children")
    }
    return SweepResult(best=best, points=tuple(points), good_ranges=good_ranges)
