"""Match evidence: the facts a constraint evaluator reads.

:class:`MatchEvidence` is a thin, backend-agnostic view over a match:
the tree QoM, the selected correspondences (with per-axis breakdowns
when the matcher can explain itself), and -- when available -- the
parsed source/target :class:`~repro.xsd.model.SchemaTree`\\ s that
structural predicates (``subtree-covered``, ``unmapped-count``,
``datatype-compatible``, ``cardinality-preserved``) need.

Evidence is always derived from the *payload dict* produced by
:func:`repro.matching.io.result_to_payload` (plus the axis keys attached
by :func:`attach_result_axes`), never from live matcher state.  That is
what makes constraint reports byte-identical across the inline, fork and
pool backends: all three produce the identical payload, and evaluation
happens over that payload alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["MatchEvidence", "attach_result_axes", "breakdown_axes"]


def breakdown_axes(breakdown) -> dict:
    """Flatten an :class:`~repro.core.qmatch.AxisBreakdown` to axis floats."""
    axes = {
        "label": breakdown.label_score,
        "properties": breakdown.properties_score,
        "level": breakdown.level_score,
        "children": breakdown.children_score,
    }
    if breakdown.instance_score is not None:
        axes["instance"] = breakdown.instance_score
    return axes


def attach_result_axes(payload: dict, result, matcher, source, target, context=None) -> dict:
    """Attach per-correspondence ``axes`` and root-pair ``root_axes``.

    Mutates and returns ``payload``.  A no-op for matchers that cannot
    explain themselves (only :class:`~repro.core.qmatch.QMatchMatcher`
    exposes ``explain``); reusing the run's ``context`` avoids re-scoring
    every pair from scratch.
    """
    explain = getattr(matcher, "explain", None)
    if explain is None:
        return payload
    matrix = result.matrix
    for entry in payload.get("correspondences", ()):
        breakdown = explain(
            source,
            target,
            entry["source"],
            entry["target"],
            matrix=matrix,
            context=context,
        )
        entry["axes"] = breakdown_axes(breakdown)
    root = explain(
        source,
        target,
        source.root.name,
        target.root.name,
        matrix=matrix,
        context=context,
    )
    payload["root_axes"] = breakdown_axes(root)
    return payload


@dataclass
class MatchEvidence:
    """Everything the constraint evaluator may inspect for one match."""

    tree_qom: Optional[float] = None
    correspondences: list = field(default_factory=list)
    root_axes: Optional[dict] = None
    source_tree: Optional[object] = None
    target_tree: Optional[object] = None
    #: Best correspondence per source path (highest score; ties broken by
    #: target path so the pick is deterministic).
    by_source: dict = field(default_factory=dict)

    def __post_init__(self):
        if not self.by_source:
            best: dict = {}
            for entry in self.correspondences:
                path = entry.get("source")
                if path is None:
                    continue
                current = best.get(path)
                key = (-float(entry.get("score", 0.0)), str(entry.get("target", "")))
                if current is None or key < current[0]:
                    best[path] = (key, entry)
            self.by_source = {path: entry for path, (_, entry) in best.items()}

    @classmethod
    def from_payload(cls, payload: dict, source_tree=None, target_tree=None) -> "MatchEvidence":
        """Build evidence from a stored/transported result payload."""
        return cls(
            tree_qom=payload.get("tree_qom"),
            correspondences=[dict(c) for c in payload.get("correspondences", ())],
            root_axes=payload.get("root_axes"),
            source_tree=source_tree,
            target_tree=target_tree,
        )

    @classmethod
    def from_result(cls, result, source, target, matcher=None, context=None) -> "MatchEvidence":
        """Build evidence from a live :class:`MatchResult`.

        Goes through the canonical payload form (with axes attached when
        ``matcher`` can explain) so in-process evaluation agrees byte for
        byte with the service backends.
        """
        from repro.matching.io import result_to_payload

        payload = result_to_payload(result)
        if matcher is not None:
            attach_result_axes(payload, result, matcher, source, target, context=context)
        return cls.from_payload(payload, source_tree=source, target_tree=target)

    @classmethod
    def from_trace(cls, spans, meta=None) -> "MatchEvidence":
        """Build partial evidence from trace spans (``qmatch explain``).

        Uses each source path's best *accepted* span as its
        correspondence; schema trees are unavailable, so structural
        predicates will report that limitation rather than guess.
        """
        correspondences = []
        root_axes = None
        tree_qom = None
        for span in spans:
            source = span.get("source", "")
            target = span.get("target", "")
            axes = {
                name: axis.get("score")
                for name, axis in (span.get("axes") or {}).items()
                if isinstance(axis, dict) and axis.get("score") is not None
            }
            if "/" not in source and "/" not in target:
                root_axes = axes or None
                tree_qom = span.get("qom")
            if span.get("accepted"):
                correspondences.append(
                    {
                        "source": source,
                        "target": target,
                        "score": span.get("qom", 0.0),
                        "category": span.get("category"),
                        "axes": axes or None,
                    }
                )
        return cls(
            tree_qom=tree_qom,
            correspondences=correspondences,
            root_axes=root_axes,
        )
