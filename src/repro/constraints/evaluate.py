"""Deterministic constraint evaluation over match evidence.

The evaluator walks a parsed :class:`~repro.constraints.language.Constraint`
tree against a :class:`~repro.constraints.evidence.MatchEvidence` and
produces a :class:`ConstraintReport`: per-node pass/fail with the evidence
that decided each predicate, aggregate predicate counts, and a *blame
path* pointing at the first failing conjunct (e.g.
``all[1] > element-mapped(path=PO/OrderNo, min_qom=0.9)``).

Semantics worth knowing:

* Combinators evaluate **all** children -- no short-circuiting -- so a
  report always covers the whole tree and is stable regardless of child
  ordering cost.
* A predicate that cannot be decided (missing path, no axis evidence, no
  schema tree in scope) **fails with a reason** instead of raising; a
  gate should not pass because its evidence went missing.
* Reports serialize canonically (sorted keys, fixed separators) so the
  same payload yields byte-identical report JSON on every backend.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from repro.matching.classes import MatchStrength
from repro.obs.spans import current_tracer
from repro.properties.types import type_strength
from repro.xsd.model import UNBOUNDED, occurs_to_str

from .evidence import MatchEvidence
from .language import Constraint

__all__ = ["ConstraintReport", "evaluate_constraint"]


def _compare(value: float, op: str, bound: float) -> bool:
    if op == ">=":
        return value >= bound
    if op == ">":
        return value > bound
    if op == "<=":
        return value <= bound
    if op == "<":
        return value < bound
    if op == "==":
        return value == bound
    return value != bound


def _resolve_source(evidence: MatchEvidence, path: str):
    """Resolve a user-supplied path against the source schema.

    Accepts absolute paths (``PO/PurchaseInfo``), bare element names, or
    path suffixes (``Lines/Item``).  Returns ``(resolved_path, node,
    reason)``; ``reason`` explains failure or ambiguity.  Without a
    source tree (trace-derived evidence) only correspondence source
    paths can anchor the lookup.
    """
    tree = evidence.source_tree
    if tree is not None:
        node = tree.find(path)
        if node is not None:
            return node.path, node, None
        matches = [n for n in tree if n.path.endswith("/" + path) or n.name == path]
        if len(matches) == 1:
            return matches[0].path, matches[0], None
        if matches:
            shown = ", ".join(sorted(n.path for n in matches)[:4])
            return None, None, f"path '{path}' is ambiguous in the source schema ({shown})"
        return None, None, f"no node '{path}' in the source schema"
    candidates = [p for p in evidence.by_source if p == path or p.endswith("/" + path)]
    if len(candidates) == 1:
        return candidates[0], None, None
    if len(candidates) > 1:
        return None, None, f"path '{path}' is ambiguous in the recorded correspondences"
    return None, None, f"no correspondence evidence for '{path}' (source schema unavailable)"


def _eval_element_mapped(node: Constraint, ev: MatchEvidence):
    path = node.arg("path")
    min_qom = node.arg("min_qom")
    resolved, _, reason = _resolve_source(ev, path)
    if resolved is None:
        return False, reason, None
    entry = ev.by_source.get(resolved)
    if entry is None:
        return False, f"source node '{resolved}' is unmapped", {"path": resolved}
    score = float(entry.get("score", 0.0))
    evidence = {"path": resolved, "target": entry.get("target"), "score": score}
    if min_qom is not None and score < min_qom:
        return (
            False,
            f"'{resolved}' maps to '{entry.get('target')}' with QoM {score:.4f} < min_qom {min_qom:g}",
            evidence,
        )
    return True, f"'{resolved}' maps to '{entry.get('target')}' (QoM {score:.4f})", evidence


def _eval_subtree_covered(node: Constraint, ev: MatchEvidence):
    path = node.arg("path")
    fraction = node.arg("fraction")
    if ev.source_tree is None:
        return False, "subtree-covered needs the source schema tree (unavailable here)", None
    resolved, anchor, reason = _resolve_source(ev, path)
    if anchor is None:
        return False, reason or f"no node '{path}' in the source schema", None
    nodes = list(anchor.iter_preorder())
    mapped = sum(1 for n in nodes if n.path in ev.by_source)
    coverage = mapped / len(nodes)
    evidence = {"path": resolved, "mapped": mapped, "total": len(nodes), "coverage": coverage}
    if coverage + 1e-9 < fraction:
        return (
            False,
            f"{mapped}/{len(nodes)} nodes under '{resolved}' mapped "
            f"({coverage:.0%} < required {fraction:.0%})",
            evidence,
        )
    return (
        True,
        f"{mapped}/{len(nodes)} nodes under '{resolved}' mapped ({coverage:.0%})",
        evidence,
    )


def _mapped_pair(node: Constraint, ev: MatchEvidence, predicate: str):
    """Shared lookup for predicates comparing a mapped source/target node pair."""
    path = node.arg("path")
    if ev.source_tree is None or ev.target_tree is None:
        return None, f"{predicate} needs both schema trees (unavailable here)"
    resolved, source_node, reason = _resolve_source(ev, path)
    if source_node is None:
        return None, reason or f"no node '{path}' in the source schema"
    entry = ev.by_source.get(resolved)
    if entry is None:
        return None, f"source node '{resolved}' is unmapped"
    target_path = entry.get("target", "")
    target_node = ev.target_tree.find(target_path)
    if target_node is None:
        return None, f"mapped target '{target_path}' not found in the target schema"
    return (resolved, source_node, target_path, target_node), None


def _eval_datatype_compatible(node: Constraint, ev: MatchEvidence):
    level = node.arg("level")
    pair, reason = _mapped_pair(node, ev, "datatype-compatible")
    if pair is None:
        return False, reason, None
    resolved, source_node, target_path, target_node = pair
    strength = type_strength(source_node.type_name, target_node.type_name)
    required = MatchStrength.EXACT if level == "exact" else MatchStrength.RELAXED
    source_type = source_node.type_name or "anyType"
    target_type = target_node.type_name or "anyType"
    evidence = {
        "path": resolved,
        "target": target_path,
        "source_type": source_type,
        "target_type": target_type,
        "strength": str(strength),
    }
    if strength < required:
        return (
            False,
            f"'{resolved}' ({source_type}) vs '{target_path}' ({target_type}): "
            f"type match is {strength}, need {level}",
            evidence,
        )
    return True, f"{source_type} ~ {target_type} ({strength})", evidence


def _eval_cardinality_preserved(node: Constraint, ev: MatchEvidence):
    pair, reason = _mapped_pair(node, ev, "cardinality-preserved")
    if pair is None:
        return False, reason, None
    resolved, source_node, target_path, target_node = pair
    source_range = f"[{source_node.min_occurs}..{occurs_to_str(source_node.max_occurs)}]"
    target_range = f"[{target_node.min_occurs}..{occurs_to_str(target_node.max_occurs)}]"
    preserved = target_node.min_occurs <= source_node.min_occurs and (
        target_node.max_occurs == UNBOUNDED
        or (source_node.max_occurs != UNBOUNDED and target_node.max_occurs >= source_node.max_occurs)
    )
    evidence = {
        "path": resolved,
        "target": target_path,
        "source_occurs": source_range,
        "target_occurs": target_range,
    }
    if not preserved:
        return (
            False,
            f"target occurrence {target_range} cannot hold every instance of "
            f"'{resolved}' {source_range}",
            evidence,
        )
    return True, f"{source_range} fits within {target_range}", evidence


def _eval_axis_score(node: Constraint, ev: MatchEvidence):
    axis = node.arg("axis")
    op = node.arg("op")
    value = node.arg("value")
    path = node.arg("path")
    if path is None:
        axes = ev.root_axes
        subject = "root pair"
        if axes is None:
            return (
                False,
                "no root axis breakdown recorded (axis evidence requires the qmatch algorithm)",
                None,
            )
    else:
        resolved, _, reason = _resolve_source(ev, path)
        if resolved is None:
            return False, reason, None
        entry = ev.by_source.get(resolved)
        if entry is None:
            return False, f"source node '{resolved}' is unmapped", {"path": resolved}
        axes = entry.get("axes")
        subject = f"'{resolved}'"
        if not axes:
            return (
                False,
                f"no axis breakdown recorded for {subject} "
                "(axis evidence requires the qmatch algorithm)",
                None,
            )
    score = axes.get(axis)
    if score is None:
        return False, f"axis '{axis}' was not scored for {subject}", {"axes": dict(axes)}
    score = float(score)
    evidence = {"axis": axis, "score": score}
    if path is not None:
        evidence["path"] = path
    if not _compare(score, op, value):
        return False, f"{subject} {axis}={score:.4f} violates {op} {value:g}", evidence
    return True, f"{subject} {axis}={score:.4f} satisfies {op} {value:g}", evidence


def _eval_unmapped_count(node: Constraint, ev: MatchEvidence):
    op = node.arg("op")
    value = node.arg("value")
    if ev.source_tree is None:
        return False, "unmapped-count needs the source schema tree (unavailable here)", None
    unmapped = sorted(n.path for n in ev.source_tree if n.path not in ev.by_source)
    count = len(unmapped)
    evidence = {"count": count, "sample": unmapped[:5]}
    if not _compare(count, op, value):
        return False, f"{count} unmapped source node(s) violates {op} {value:g}", evidence
    return True, f"{count} unmapped source node(s) satisfies {op} {value:g}", evidence


def _eval_tree_qom(node: Constraint, ev: MatchEvidence):
    op = node.arg("op")
    value = node.arg("value")
    if ev.tree_qom is None:
        return False, "no tree QoM recorded", None
    qom = float(ev.tree_qom)
    evidence = {"tree_qom": qom}
    if not _compare(qom, op, value):
        return False, f"tree QoM {qom:.4f} violates {op} {value:g}", evidence
    return True, f"tree QoM {qom:.4f} satisfies {op} {value:g}", evidence


_EVALUATORS = {
    "element-mapped": _eval_element_mapped,
    "subtree-covered": _eval_subtree_covered,
    "datatype-compatible": _eval_datatype_compatible,
    "cardinality-preserved": _eval_cardinality_preserved,
    "axis-score": _eval_axis_score,
    "unmapped-count": _eval_unmapped_count,
    "tree-qom": _eval_tree_qom,
}


def _eval_node(node: Constraint, ev: MatchEvidence, counts: dict) -> dict:
    detail = node.describe()
    if node.kind == "predicate":
        counts["evaluated"] += 1
        passed, reason, evidence = _EVALUATORS[node.predicate](node, ev)
        if not passed:
            counts["failed"] += 1
        return {
            "kind": "predicate",
            "detail": detail,
            "passed": passed,
            "reason": reason,
            "evidence": evidence,
        }
    children = [_eval_node(child, ev, counts) for child in node.children]
    succeeded = sum(1 for child in children if child["passed"])
    if node.kind == "all":
        passed = succeeded == len(children)
    elif node.kind == "any":
        passed = succeeded > 0
    elif node.kind == "at_least":
        passed = succeeded >= node.count
    else:  # not
        passed = not children[0]["passed"]
    return {
        "kind": node.kind,
        "detail": detail,
        "passed": passed,
        "children": children,
    }


def _blame(report: dict) -> Optional[str]:
    """Path to the first failing conjunct, for error messages and CI logs."""
    if report["passed"]:
        return None
    parts = []
    current = report
    while True:
        children = current.get("children")
        if current["kind"] in ("predicate", "not") or not children:
            parts.append(current["detail"])
            break
        failing = [(i, c) for i, c in enumerate(children) if not c["passed"]]
        if not failing:
            parts.append(current["detail"])
            break
        index, child = failing[0]
        parts.append(f"{current['kind']}[{index}]")
        current = child
    return " > ".join(parts)


@dataclass
class ConstraintReport:
    """The structured outcome of evaluating one constraint."""

    passed: bool
    root: dict
    blame: Optional[str]
    evaluated: int
    failed: int
    name: str = ""
    description: str = ""

    @property
    def predicates_passed(self) -> int:
        return self.evaluated - self.failed

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "passed": self.passed,
            "blame": self.blame,
            "counts": {
                "evaluated": self.evaluated,
                "passed": self.predicates_passed,
                "failed": self.failed,
            },
            "report": self.root,
        }

    def to_canonical_json(self) -> str:
        """Byte-stable serialization (sorted keys, fixed separators)."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def render(self) -> str:
        """Human-readable verdict tree (one row per constraint node)."""
        lines = []
        title = self.name or self.root["detail"]
        lines.append(f"constraint: {title}")
        if self.description:
            lines.append(f"  {self.description}")
        lines.append(f"verdict: {'PASS' if self.passed else 'FAIL'}")
        lines.append(
            f"predicates: {self.predicates_passed}/{self.evaluated} passed"
        )
        if self.blame:
            lines.append(f"blame: {self.blame}")

        def walk(node: dict, depth: int):
            mark = "PASS" if node["passed"] else "FAIL"
            row = f"{'  ' * depth}[{mark}] {node['detail']}"
            reason = node.get("reason")
            if reason:
                row += f" -- {reason}"
            lines.append(row)
            for child in node.get("children", ()):
                walk(child, depth + 1)

        walk(self.root, 1)
        return "\n".join(lines)


def evaluate_constraint(constraint: Constraint, evidence: MatchEvidence) -> ConstraintReport:
    """Evaluate ``constraint`` against ``evidence`` (never raises on content)."""
    counts = {"evaluated": 0, "failed": 0}
    root = _eval_node(constraint, evidence, counts)
    tracer = current_tracer()
    if tracer.enabled:
        # Annotate whatever span the caller opened (the runner's
        # ``constraints.evaluate`` / search's ``constraints.filter``)
        # with predicate-level telemetry the caller cannot see.
        tracer.annotate({
            "predicates_evaluated": counts["evaluated"],
            "predicates_failed": counts["failed"],
        })
    return ConstraintReport(
        passed=root["passed"],
        root=root,
        blame=_blame(root),
        evaluated=counts["evaluated"],
        failed=counts["failed"],
        name=constraint.name,
        description=constraint.description,
    )
