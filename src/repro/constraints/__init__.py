"""Declarative match-constraint DSL: parse, evaluate, report.

The subsystem splits cleanly in three:

* :mod:`~repro.constraints.language` -- the JSON/YAML grammar and strict
  parser (:func:`parse_constraint`, :func:`load_constraint_file`).
* :mod:`~repro.constraints.evidence` -- :class:`MatchEvidence`, the
  payload-derived view of a match that evaluation reads.
* :mod:`~repro.constraints.evaluate` -- the deterministic evaluator
  producing a canonical :class:`ConstraintReport`.

Used by ``qmatch match/batch/search/check/explain --require``, the
service's ``POST /jobs`` / ``POST /search`` ``constraints`` objects, and
``CorpusSearcher`` post-rerank filtering.
"""

from .evaluate import ConstraintReport, evaluate_constraint
from .evidence import MatchEvidence, attach_result_axes, breakdown_axes
from .language import (
    Constraint,
    ConstraintError,
    load_constraint_file,
    parse_constraint,
)

__all__ = [
    "Constraint",
    "ConstraintError",
    "ConstraintReport",
    "MatchEvidence",
    "attach_result_axes",
    "breakdown_axes",
    "evaluate_constraint",
    "load_constraint_file",
    "parse_constraint",
]
