"""The match-constraint language: grammar, strict parser, file loading.

A constraint is a small declarative tree expressed in JSON (or YAML when
PyYAML is available).  Every node is a single-key object: either a
combinator over child constraints or a typed predicate over match
evidence::

    {"all": [                                   # and / or / not / at_least
        {"element-mapped": {"path": "PO/OrderNo", "min_qom": 0.6}},
        {"at_least": {"count": 2, "of": [
            {"subtree-covered": {"path": "PO/PurchaseInfo", "fraction": 0.8}},
            {"datatype-compatible": {"path": "PO/OrderNo"}},
            {"axis-score": {"axis": "label", "op": ">=", "value": 0.5}}
        ]}}
    ]}

A constraint *file* may either be a bare node or a wrapper object with
optional metadata::

    {"name": "migration-gate", "description": "...", "require": {...}}

The parser is strict: unknown combinators, unknown predicates, unknown or
missing arguments, and malformed values all raise :class:`ConstraintError`
with a message naming the offending key.  ``{"include": "other.json"}``
splices another constraint file in place (relative to the including file);
cyclic includes are detected and rejected.  Parsing is pure -- evaluation
lives in :mod:`repro.constraints.evaluate`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Mapping, Optional, Sequence

__all__ = [
    "COMBINATORS",
    "Constraint",
    "ConstraintError",
    "OPS",
    "PREDICATES",
    "load_constraint_file",
    "parse_constraint",
]


class ConstraintError(ValueError):
    """A malformed constraint document (bad syntax, unknown predicate...)."""


#: Comparison operators accepted by ``op`` arguments.
OPS = (">=", ">", "<=", "<", "==", "!=")

_OP_ALIASES = {"ge": ">=", "gt": ">", "le": "<=", "lt": "<", "eq": "==", "ne": "!="}

#: Axis names accepted by ``axis-score``.
AXES = ("label", "properties", "level", "children", "instance")

_LEVELS = ("relaxed", "exact")

COMBINATORS = ("all", "any", "not", "at_least", "include")

_COMBINATOR_ALIASES = {"and": "all", "or": "any"}


@dataclass(frozen=True)
class _Arg:
    name: str
    kind: str  # "str" | "number" | "int" | "op" | "axis" | "level"
    required: bool = True
    default: object = None
    low: Optional[float] = None
    high: Optional[float] = None


#: Predicate signatures: name -> ordered argument specs.
PREDICATES: dict[str, tuple[_Arg, ...]] = {
    "element-mapped": (
        _Arg("path", "str"),
        _Arg("min_qom", "number", required=False, default=None, low=0.0, high=1.0),
    ),
    "subtree-covered": (
        _Arg("path", "str"),
        _Arg("fraction", "number", required=False, default=1.0, low=0.0, high=1.0),
    ),
    "datatype-compatible": (
        _Arg("path", "str"),
        _Arg("level", "level", required=False, default="relaxed"),
    ),
    "cardinality-preserved": (_Arg("path", "str"),),
    "axis-score": (
        _Arg("axis", "axis"),
        _Arg("op", "op"),
        _Arg("value", "number", low=0.0, high=1.0),
        _Arg("path", "str", required=False, default=None),
    ),
    "unmapped-count": (
        _Arg("op", "op"),
        _Arg("value", "int", low=0),
    ),
    "tree-qom": (
        _Arg("op", "op"),
        _Arg("value", "number", low=0.0, high=1.0),
    ),
}


@dataclass(frozen=True)
class Constraint:
    """One parsed constraint node (combinator or predicate).

    ``kind`` is ``"all"``, ``"any"``, ``"not"``, ``"at_least"`` or
    ``"predicate"``.  Predicate arguments are stored as an ordered tuple
    of ``(name, value)`` pairs in signature order so :meth:`describe` is
    deterministic regardless of the JSON key order the author used.
    """

    kind: str
    children: tuple["Constraint", ...] = ()
    count: int = 0
    predicate: str = ""
    args: tuple[tuple[str, object], ...] = ()
    name: str = ""
    description: str = ""

    def arg(self, key: str, default: object = None) -> object:
        for name, value in self.args:
            if name == key:
                return value
        return default

    def describe(self) -> str:
        """A stable one-line rendering, used in reports and blame paths."""
        if self.kind == "predicate":
            shown = []
            for name, value in self.args:
                if value is None:
                    continue
                shown.append(f"{name}={value}")
            return f"{self.predicate}({', '.join(shown)})"
        if self.kind == "not":
            return "not"
        if self.kind == "at_least":
            return f"at_least {self.count} of {len(self.children)}"
        return f"{self.kind} of {len(self.children)}"

    def as_dict(self) -> dict:
        """The normalized JSON form (aliases resolved, defaults explicit)."""
        if self.kind == "predicate":
            return {self.predicate: {name: value for name, value in self.args if value is not None}}
        if self.kind == "not":
            return {"not": self.children[0].as_dict()}
        if self.kind == "at_least":
            return {"at_least": {"count": self.count, "of": [c.as_dict() for c in self.children]}}
        return {self.kind: [c.as_dict() for c in self.children]}


def _check_arg(predicate: str, spec: _Arg, value: object) -> object:
    where = f"{predicate}.{spec.name}"
    if spec.kind == "str":
        if not isinstance(value, str) or not value:
            raise ConstraintError(f"{where} must be a non-empty string")
        return value
    if spec.kind == "op":
        if isinstance(value, str):
            op = _OP_ALIASES.get(value, value)
            if op in OPS:
                return op
        raise ConstraintError(f"{where} must be one of {', '.join(OPS)}")
    if spec.kind == "axis":
        if not isinstance(value, str) or value not in AXES:
            raise ConstraintError(f"{where} must be one of {', '.join(AXES)}")
        return value
    if spec.kind == "level":
        if not isinstance(value, str) or value not in _LEVELS:
            raise ConstraintError(f"{where} must be one of {', '.join(_LEVELS)}")
        return value
    # numeric kinds
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConstraintError(f"{where} must be a number")
    if spec.kind == "int":
        if isinstance(value, float) and not value.is_integer():
            raise ConstraintError(f"{where} must be an integer")
        value = int(value)
    else:
        value = float(value)
    if spec.low is not None and value < spec.low:
        raise ConstraintError(f"{where} must be >= {spec.low:g}")
    if spec.high is not None and value > spec.high:
        raise ConstraintError(f"{where} must be <= {spec.high:g}")
    return value


def _parse_predicate(name: str, raw: object) -> Constraint:
    specs = PREDICATES[name]
    if not isinstance(raw, Mapping):
        raise ConstraintError(f"{name} arguments must be an object, got {type(raw).__name__}")
    known = {spec.name for spec in specs}
    extra = sorted(set(raw) - known)
    if extra:
        raise ConstraintError(
            f"{name} got unexpected argument(s) {', '.join(extra)}; "
            f"accepted: {', '.join(spec.name for spec in specs)}"
        )
    args = []
    for spec in specs:
        if spec.name in raw:
            args.append((spec.name, _check_arg(name, spec, raw[spec.name])))
        elif spec.required:
            raise ConstraintError(f"{name} requires argument '{spec.name}'")
        else:
            args.append((spec.name, spec.default))
    return Constraint(kind="predicate", predicate=name, args=tuple(args))


def _parse_children(kind: str, raw: object, base_dir: Optional[Path], stack: tuple) -> tuple:
    if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
        raise ConstraintError(f"'{kind}' takes a list of constraints")
    if not raw:
        raise ConstraintError(f"'{kind}' requires at least one child constraint")
    return tuple(_parse_node(item, base_dir, stack) for item in raw)


def _parse_node(data: object, base_dir: Optional[Path], stack: tuple) -> Constraint:
    if not isinstance(data, Mapping):
        raise ConstraintError(
            f"constraint node must be an object with exactly one key, got {type(data).__name__}"
        )
    if len(data) != 1:
        keys = ", ".join(sorted(str(k) for k in data)) or "(empty)"
        raise ConstraintError(f"constraint node must have exactly one key, got: {keys}")
    ((key, value),) = data.items()
    kind = _COMBINATOR_ALIASES.get(key, key)
    if kind in ("all", "any"):
        return Constraint(kind=kind, children=_parse_children(key, value, base_dir, stack))
    if kind == "not":
        return Constraint(kind="not", children=(_parse_node(value, base_dir, stack),))
    if kind == "at_least":
        if not isinstance(value, Mapping):
            raise ConstraintError("at_least takes an object {count, of}")
        raw = dict(value)
        if "k" in raw and "count" not in raw:
            raw["count"] = raw.pop("k")
        extra = sorted(set(raw) - {"count", "of"})
        if extra:
            raise ConstraintError(f"at_least got unexpected key(s): {', '.join(extra)}")
        if "count" not in raw or "of" not in raw:
            raise ConstraintError("at_least requires both 'count' and 'of'")
        count = raw["count"]
        if isinstance(count, bool) or not isinstance(count, int) or count < 1:
            raise ConstraintError("at_least.count must be a positive integer")
        children = _parse_children("at_least", raw["of"], base_dir, stack)
        if count > len(children):
            raise ConstraintError(
                f"at_least.count is {count} but only {len(children)} constraints given"
            )
        return Constraint(kind="at_least", count=count, children=children)
    if kind == "include":
        return _parse_include(value, base_dir, stack)
    if kind in PREDICATES:
        return _parse_predicate(kind, value)
    known = ", ".join(list(COMBINATORS) + sorted(PREDICATES))
    raise ConstraintError(f"unknown constraint '{key}'; expected one of: {known}")


def _parse_include(value: object, base_dir: Optional[Path], stack: tuple) -> Constraint:
    if not isinstance(value, str) or not value:
        raise ConstraintError("include takes a file path string")
    if base_dir is None:
        raise ConstraintError(
            "include is only supported when loading constraints from a file"
        )
    path = (base_dir / value).resolve()
    if str(path) in stack:
        chain = " -> ".join([Path(p).name for p in stack] + [path.name])
        raise ConstraintError(f"cyclic include: {chain}")
    return _load_file(path, stack)


def _parse_text(text: str, path: Path) -> object:
    if path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError:  # pragma: no cover - PyYAML is normally present
            raise ConstraintError(
                f"cannot read {path.name}: PyYAML is not installed "
                "(use a .json constraint file instead)"
            ) from None
        try:
            return yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ConstraintError(f"invalid YAML in {path.name}: {exc}") from None
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConstraintError(f"invalid JSON in {path.name}: {exc}") from None


def _parse_document(data: object, base_dir: Optional[Path], stack: tuple) -> Constraint:
    if isinstance(data, Mapping) and "require" in data:
        extra = sorted(set(data) - {"require", "name", "description"})
        if extra:
            raise ConstraintError(
                f"unknown top-level key(s): {', '.join(extra)}; "
                "a constraint document takes name, description and require"
            )
        name = data.get("name", "")
        description = data.get("description", "")
        if not isinstance(name, str) or not isinstance(description, str):
            raise ConstraintError("name and description must be strings")
        node = _parse_node(data["require"], base_dir, stack)
        return replace(node, name=name, description=description)
    return _parse_node(data, base_dir, stack)


def _load_file(path: Path, stack: tuple) -> Constraint:
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConstraintError(f"cannot read constraint file {path}: {exc}") from None
    data = _parse_text(text, path)
    return _parse_document(data, path.parent, stack + (str(path),))


def parse_constraint(data: object, base_dir=None) -> Constraint:
    """Parse an in-memory constraint document (bare node or wrapper form).

    ``include`` nodes are only honoured when ``base_dir`` is given; inline
    documents (e.g. from an HTTP request body) may not touch the
    filesystem.
    """
    base = Path(base_dir) if base_dir is not None else None
    return _parse_document(data, base, ())


def load_constraint_file(path) -> Constraint:
    """Load and strictly parse a ``.json``/``.yaml`` constraint file."""
    resolved = Path(path).resolve()
    if not resolved.is_file():
        raise ConstraintError(f"constraint file not found: {path}")
    constraint = _load_file(resolved, ())
    if not constraint.name:
        constraint = replace(constraint, name=resolved.stem)
    return constraint
