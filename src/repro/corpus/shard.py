"""Hash-sharded search over a segmented corpus index.

:class:`ShardedCorpusSearcher` splits the stage-1 scan of a
:class:`~repro.corpus.segments.SegmentedCorpusIndex` into ``shards``
deterministic segment groups (blake2b of the segment id, so a segment
stays in its shard across reopenings) and fans the groups across a
thread pool.  Stage 2 is inherited unchanged from
:class:`~repro.corpus.search.CorpusSearcher`, whose rerank runs through
:class:`~repro.service.runner.BatchRunner` -- so retrieval fan-out
(threads over shards) composes with rerank parallelism (worker
processes over candidate pairs) without either knowing about the other.

Sharding never changes scores: every shard scores its documents against
the *global* merged statistics (document frequencies, lengths, counts),
so the union of per-shard score maps is exactly the unsharded score
map -- each document lives in exactly one segment, hence exactly one
shard.  ``tests/test_corpus_shard.py`` asserts this equality.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from repro.corpus.search import CorpusSearcher
from repro.corpus.segments import SegmentedCorpusIndex, SegmentError
from repro.obs.spans import current_tracer

#: Default number of stage-1 shards.
DEFAULT_SHARDS = 4


def shard_of(seg_id: str, shards: int) -> int:
    """The stable shard a segment id belongs to.

    blake2b rather than :func:`hash` because the latter is salted per
    process -- shard assignment must not move between runs.
    """
    digest = hashlib.blake2b(
        seg_id.encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little") % shards


class ShardedCorpusSearcher(CorpusSearcher):
    """A :class:`CorpusSearcher` whose stage 1 fans over segment shards."""

    def __init__(self, corpus, index: SegmentedCorpusIndex,
                 shards: int = DEFAULT_SHARDS, **kwargs):
        if not isinstance(index, SegmentedCorpusIndex):
            raise SegmentError(
                "ShardedCorpusSearcher requires a SegmentedCorpusIndex; "
                "monolithic indexes have nothing to shard"
            )
        if shards < 1:
            raise SegmentError(f"shards must be >= 1, got {shards}")
        super().__init__(corpus, index, **kwargs)
        self.shards = shards
        self._executor: Optional[ThreadPoolExecutor] = None

    def shard_groups(self) -> list:
        """Live segments grouped by shard (empty shards omitted)."""
        groups: dict[int, list] = {}
        for segment in self.index.segments():
            groups.setdefault(
                shard_of(segment.seg_id, self.shards), []
            ).append(segment)
        return [groups[key] for key in sorted(groups)]

    def _stage1(self, tokens, signature) -> tuple:
        groups = self.shard_groups()
        if len(groups) <= 1 or self.index.max_candidates is not None:
            # Nothing to fan (or budget mode, whose admission is global
            # by construction): one combined call is both simpler and
            # avoids redundant per-shard admission walks.
            return self.index.retrieve_scores(
                tokens, signature, scorer=self.scorer
            )
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=min(self.shards, len(groups)),
                thread_name_prefix="qmatch-shard",
            )
        # Shard spans need an explicit parent: the scans run on pool
        # threads, where neither the contextvar nor the tracer's
        # nesting stack is visible.  ``len(shard_lexical)`` is the
        # per-shard docs_scored (the index's ``last_scan`` attribute is
        # a single slot the concurrent calls would race on).
        tracer = current_tracer()
        parent_id = tracer.current_id() if tracer.enabled else ""

        def scan_shard(shard_index: int, group: list) -> tuple:
            span = tracer.child(
                "retrieve.shard", parent_id=parent_id,
                attributes={
                    "shard": shard_index, "segments": len(group),
                },
            ) if tracer.enabled else None
            shard_lexical, shard_structural = self.index.retrieve_scores(
                tokens, signature,
                scorer=self.scorer, segments=group, normalize=False,
            )
            if span is not None:
                tracer.finish(span, attributes={
                    "docs_scored": len(shard_lexical),
                    "structural_candidates": len(shard_structural),
                })
            return shard_lexical, shard_structural

        futures = [
            self._executor.submit(scan_shard, shard_index, group)
            for shard_index, group in enumerate(groups)
        ]
        lexical: dict = {}
        structural: set = set()
        for future in futures:
            shard_lexical, shard_structural = future.result()
            # Disjoint by construction: a document lives in exactly one
            # segment, and a segment in exactly one shard.
            lexical.update(shard_lexical)
            structural.update(shard_structural)
        if self.scorer == "bm25" and lexical:
            # BM25 is max-normalized; the max must be the global one,
            # so shards return raw sums and the merge divides here
            # (same float expression as the unsharded path).
            best = max(lexical.values())
            if best <= 0.0:
                return {}, structural
            lexical = {
                doc_id: score / best for doc_id, score in lexical.items()
            }
        return lexical, structural
