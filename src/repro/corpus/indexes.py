"""Blocking indexes over a schema corpus.

Two complementary cheap signals stand in for the expensive pairwise
match during candidate retrieval:

- :class:`InvertedIndex` -- a classic IDF-weighted inverted index over
  *normalized label tokens*.  Tokens come from the same tokenizer the
  linguistic matcher uses (camelCase/snake/delimiter splitting, light
  stemming) and are expanded through the thesaurus (abbreviations and
  acronyms), so ``qty``-labelled schemas still block against
  ``Quantity``-labelled ones.  Scoring is cosine similarity over
  log-tf * idf vectors.
- :class:`MinHashIndex` -- MinHash signatures over *node-label
  shingles* (normalized labels plus parent>child label bigrams) with
  LSH banding.  Two schemas land in a shared band bucket when their
  shingle sets are likely similar, which catches structural
  near-duplicates whose token frequencies alone are unremarkable.

Everything here is deterministic: MinHash permutations come from a
seeded RNG over fixed 64-bit blake2b shingle hashes (never Python's
salted ``hash``), and the persisted payload is canonical JSON, so
rebuilding an index over the same corpus with the same
:class:`IndexConfig` is byte-identical -- the property the CLI's
staleness check and the result-store keys both lean on.

:class:`CorpusIndex` bundles both indexes with their config and the
corpus fingerprint they were built from, and handles (de)serialization.
"""

from __future__ import annotations

import json
import math
import random
from collections import Counter
from dataclasses import dataclass
from hashlib import blake2b
from pathlib import Path
from typing import Mapping, Optional, Union

from repro.linguistic.thesaurus import Thesaurus
from repro.linguistic.tokenizer import normalize, stem, tokenize
from repro.service.store import atomic_write_text, canonical_json

#: Modulus for the universal-hash permutations (Mersenne prime 2^61-1).
_MERSENNE = (1 << 61) - 1

#: Index format version (bumped on incompatible payload changes).
INDEX_VERSION = 1

INDEX_NAME = "index.json"


class IndexError_(ValueError):
    """An index payload or configuration is unusable."""


@dataclass(frozen=True)
class IndexConfig:
    """Everything that shapes index content and therefore blocking.

    ``num_perm`` MinHash permutations are split into ``bands`` bands of
    ``num_perm // bands`` rows; two schemas become LSH candidates when
    at least one band of their signatures agrees exactly.  With the
    defaults (64 permutations, 16 bands of 4 rows) the candidate
    probability crosses 50% around Jaccard ~0.5 -- permissive blocking,
    sharp enough to prune unrelated schemas.
    """

    num_perm: int = 64
    bands: int = 16
    seed: int = 2005
    keep_numbers: bool = True
    use_stemming: bool = True
    use_thesaurus: bool = True
    structural_shingles: bool = True

    def __post_init__(self):
        if self.num_perm < 1:
            raise IndexError_(f"num_perm must be >= 1, got {self.num_perm}")
        if self.bands < 1 or self.num_perm % self.bands:
            raise IndexError_(
                f"bands must divide num_perm ({self.num_perm}), "
                f"got {self.bands}"
            )

    @property
    def rows(self) -> int:
        return self.num_perm // self.bands

    def signature(self) -> dict:
        """JSON-friendly config identity (what the fingerprint hashes)."""
        return {
            "num_perm": self.num_perm,
            "bands": self.bands,
            "seed": self.seed,
            "keep_numbers": self.keep_numbers,
            "use_stemming": self.use_stemming,
            "use_thesaurus": self.use_thesaurus,
            "structural_shingles": self.structural_shingles,
        }

    def fingerprint(self) -> str:
        from repro.matching.io import config_fingerprint

        return config_fingerprint(dict(self.signature(), kind="corpus-index"))

    @classmethod
    def from_signature(cls, payload: dict) -> "IndexConfig":
        known = {name for name in cls.__dataclass_fields__}
        return cls(**{
            key: value for key, value in payload.items() if key in known
        })


# ----------------------------------------------------------------------
# Feature extraction
# ----------------------------------------------------------------------

def label_tokens(label: str, config: IndexConfig,
                 thesaurus: Optional[Thesaurus] = None) -> list[str]:
    """Index tokens of one label: split, stem, thesaurus-expand.

    Expansions are *added* alongside the surface token (``qty`` indexes
    as both ``qty`` and ``quantity``), so queries match from either
    side without the index needing query-time expansion.
    """
    tokens = tokenize(label, keep_numbers=config.keep_numbers)
    out = []
    for token in tokens:
        out.append(stem(token) if config.use_stemming else token)
        if thesaurus is None or not config.use_thesaurus:
            continue
        expansion = thesaurus.expand_abbreviation(token)
        if expansion:
            out.append(stem(expansion) if config.use_stemming else expansion)
        acronym_words = thesaurus.expand_acronym(token)
        if acronym_words:
            out.extend(
                stem(word) if config.use_stemming else word
                for word in acronym_words
            )
    return out


def schema_tokens(tree, config: IndexConfig,
                  thesaurus: Optional[Thesaurus] = None) -> Counter:
    """The token multiset of a whole schema (one document)."""
    tokens: Counter = Counter()
    for node in tree.root.iter_preorder():
        tokens.update(label_tokens(node.name, config, thesaurus))
    return tokens


def schema_shingles(tree, config: IndexConfig) -> frozenset:
    """Node-label shingles: normalized labels + parent>child bigrams.

    The bigrams carry the structural signal -- two schemas sharing many
    parent/child label pairs have similar shapes even when label
    *frequencies* differ.
    """
    shingles = set()
    for node in tree.root.iter_preorder():
        label = normalize(node.name)
        shingles.add(label)
        if config.structural_shingles and node.parent is not None:
            shingles.add(f"{normalize(node.parent.name)}>{label}")
    return frozenset(shingles)


def _shingle_hash(shingle: str) -> int:
    """Stable 64-bit hash of one shingle (blake2b; never ``hash()``)."""
    return int.from_bytes(
        blake2b(shingle.encode("utf-8"), digest_size=8).digest(), "big"
    )


# ----------------------------------------------------------------------
# Inverted token index
# ----------------------------------------------------------------------

#: Lexical scoring functions :meth:`InvertedIndex.scores` dispatches on.
LEXICAL_SCORERS = ("cosine", "bm25")

#: Standard BM25 shape parameters: ``k1`` caps term-frequency
#: saturation, ``b`` scales document-length normalization.
BM25_K1 = 1.5
BM25_B = 0.75


class InvertedIndex:
    """IDF-weighted inverted index over label tokens.

    Documents are schema content hashes.  Two scorers share the same
    postings: ``cosine`` (similarity of ``(1 + log tf) * idf`` vectors,
    the default) and ``bm25`` (Okapi BM25 with document-length
    normalization, max-normalized into [0, 1] so it blends with the
    structural Jaccard estimate exactly like cosine does).  Documents
    with no tokens (all labels empty after filtering) are tracked for
    the document count but can never score.
    """

    def __init__(self):
        #: doc id -> token multiset (the source of truth).
        self._documents: dict[str, Counter] = {}
        #: token -> {doc id: tf} (derived; kept in sync incrementally).
        self._postings: dict[str, dict[str, int]] = {}
        #: doc id -> total token count (BM25 length normalization).
        self._lengths: dict[str, int] = {}
        self._total_length = 0

    def add(self, doc_id: str, tokens: Mapping[str, int]):
        if doc_id in self._documents:
            self.remove(doc_id)
        counts = Counter(
            {token: int(tf) for token, tf in tokens.items() if tf > 0}
        )
        self._documents[doc_id] = counts
        for token, tf in counts.items():
            self._postings.setdefault(token, {})[doc_id] = tf
        length = sum(counts.values())
        self._lengths[doc_id] = length
        self._total_length += length

    def remove(self, doc_id: str):
        counts = self._documents.pop(doc_id, None)
        if counts is None:
            return
        for token in counts:
            docs = self._postings.get(token)
            if docs is not None:
                docs.pop(doc_id, None)
                if not docs:
                    del self._postings[token]
        self._total_length -= self._lengths.pop(doc_id, 0)

    @property
    def document_count(self) -> int:
        return len(self._documents)

    @property
    def token_count(self) -> int:
        return len(self._postings)

    def document_ids(self) -> set:
        return set(self._documents)

    def document_frequency(self, token: str) -> int:
        return len(self._postings.get(token, ()))

    def idf(self, token: str) -> float:
        """Smoothed inverse document frequency (always > 0)."""
        df = self.document_frequency(token)
        return math.log((1 + self.document_count) / (1 + df)) + 1.0

    def _weight(self, tf: int, idf: float) -> float:
        return (1.0 + math.log(tf)) * idf

    def _document_norm(self, doc_id: str) -> float:
        counts = self._documents.get(doc_id)
        if not counts:
            return 0.0
        return math.sqrt(sum(
            self._weight(tf, self.idf(token)) ** 2
            for token, tf in counts.items()
        ))

    @property
    def average_length(self) -> float:
        if not self._lengths:
            return 0.0
        return self._total_length / len(self._lengths)

    def scores(self, query_tokens: Mapping[str, int],
               scorer: str = "cosine") -> dict[str, float]:
        """Lexical scores of the query against every candidate doc.

        Dispatches on ``scorer`` (one of :data:`LEXICAL_SCORERS`).
        Only documents sharing at least one token appear in the result
        -- the inverted structure never touches the rest of the corpus
        under either scorer.
        """
        if scorer == "cosine":
            return self.cosine_scores(query_tokens)
        if scorer == "bm25":
            return self.bm25_scores(query_tokens)
        raise IndexError_(
            f"unknown scorer {scorer!r}: expected one of "
            f"{', '.join(LEXICAL_SCORERS)}"
        )

    def cosine_scores(
        self, query_tokens: Mapping[str, int]
    ) -> dict[str, float]:
        """Cosine similarity of ``(1 + log tf) * idf`` vectors."""
        accumulator: dict[str, float] = {}
        query_norm_sq = 0.0
        for token, qtf in query_tokens.items():
            if qtf <= 0:
                continue
            idf = self.idf(token)
            q_weight = self._weight(qtf, idf)
            query_norm_sq += q_weight ** 2
            for doc_id, tf in self._postings.get(token, {}).items():
                accumulator[doc_id] = (
                    accumulator.get(doc_id, 0.0)
                    + q_weight * self._weight(tf, idf)
                )
        if not accumulator or query_norm_sq <= 0.0:
            return {}
        query_norm = math.sqrt(query_norm_sq)
        scores = {}
        for doc_id, dot in accumulator.items():
            doc_norm = self._document_norm(doc_id)
            if doc_norm > 0.0:
                scores[doc_id] = dot / (query_norm * doc_norm)
        return scores

    def bm25_scores(self, query_tokens: Mapping[str, int],
                    k1: float = BM25_K1, b: float = BM25_B,
                    ) -> dict[str, float]:
        """Okapi BM25, max-normalized into [0, 1].

        Raw BM25 is unbounded, which would let the lexical term swamp
        the [0, 1] structural Jaccard estimate in the retrieval blend;
        dividing by the best document's score preserves the BM25
        *ranking* exactly while keeping the blend's two signals on the
        same scale.  The Robertson/Sparck-Jones idf is floored at a
        small positive epsilon so tokens present in every document
        still contribute (matters on tiny corpora, where df == N is
        common).
        """
        n = self.document_count
        avgdl = self.average_length
        accumulator: dict[str, float] = {}
        for token, qtf in query_tokens.items():
            if qtf <= 0:
                continue
            postings = self._postings.get(token)
            if not postings:
                continue
            df = len(postings)
            idf = max(
                math.log(1.0 + (n - df + 0.5) / (df + 0.5)), 1e-6
            )
            for doc_id, tf in postings.items():
                dl = self._lengths.get(doc_id, 0)
                norm = (
                    1.0 - b + b * (dl / avgdl) if avgdl > 0.0 else 1.0
                )
                accumulator[doc_id] = (
                    accumulator.get(doc_id, 0.0)
                    + qtf * idf * (tf * (k1 + 1.0)) / (tf + k1 * norm)
                )
        if not accumulator:
            return {}
        best = max(accumulator.values())
        if best <= 0.0:
            return {}
        return {
            doc_id: score / best for doc_id, score in accumulator.items()
        }

    def to_payload(self) -> dict:
        return {
            "documents": {
                doc_id: dict(sorted(counts.items()))
                for doc_id, counts in self._documents.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "InvertedIndex":
        index = cls()
        for doc_id, counts in (payload.get("documents") or {}).items():
            index.add(doc_id, counts)
        return index


# ----------------------------------------------------------------------
# MinHash / LSH structural index
# ----------------------------------------------------------------------

class MinHashIndex:
    """MinHash signatures with LSH banding over shingle sets."""

    def __init__(self, num_perm: int = 64, bands: int = 16,
                 seed: int = 2005):
        if num_perm < 1 or bands < 1 or num_perm % bands:
            raise IndexError_(
                f"bands ({bands}) must divide num_perm ({num_perm})"
            )
        self.num_perm = num_perm
        self.bands = bands
        self.rows = num_perm // bands
        rng = random.Random(seed)
        #: (a, b) per permutation for h(x) = (a*x + b) mod p.
        self._params = [
            (rng.randrange(1, _MERSENNE), rng.randrange(0, _MERSENNE))
            for _ in range(num_perm)
        ]
        self._signatures: dict[str, tuple] = {}
        #: (band index, band values) -> set of doc ids.
        self._buckets: dict[tuple, set] = {}

    def signature(self, shingles) -> tuple:
        """The MinHash signature of a shingle set (deterministic)."""
        hashes = [_shingle_hash(shingle) for shingle in shingles]
        if not hashes:
            # Empty documents get the identity-free max signature; they
            # collide only with other empty documents.
            return tuple([_MERSENNE] * self.num_perm)
        return tuple(
            min((a * value + b) % _MERSENNE for value in hashes)
            for a, b in self._params
        )

    def band_keys(self, signature: tuple):
        """The LSH bucket keys of a signature, one per band.

        Public so the segmented index can build per-segment bucket
        tables from stored signatures with the exact banding this
        configuration uses.
        """
        for band in range(self.bands):
            start = band * self.rows
            yield (band, signature[start:start + self.rows])

    # Internal alias kept for the historical private name.
    _band_keys = band_keys

    def add(self, doc_id: str, signature: tuple):
        if doc_id in self._signatures:
            self.remove(doc_id)
        signature = tuple(signature)
        if len(signature) != self.num_perm:
            raise IndexError_(
                f"signature length {len(signature)} != num_perm "
                f"{self.num_perm}"
            )
        self._signatures[doc_id] = signature
        for key in self._band_keys(signature):
            self._buckets.setdefault(key, set()).add(doc_id)

    def remove(self, doc_id: str):
        signature = self._signatures.pop(doc_id, None)
        if signature is None:
            return
        for key in self._band_keys(signature):
            bucket = self._buckets.get(key)
            if bucket is not None:
                bucket.discard(doc_id)
                if not bucket:
                    del self._buckets[key]

    @property
    def document_count(self) -> int:
        return len(self._signatures)

    def candidates(self, signature: tuple) -> set:
        """Doc ids sharing at least one LSH band with ``signature``."""
        found: set = set()
        for key in self._band_keys(tuple(signature)):
            found.update(self._buckets.get(key, ()))
        return found

    def estimate(self, signature: tuple, doc_id: str) -> float:
        """Estimated Jaccard similarity against a stored document."""
        stored = self._signatures.get(doc_id)
        if stored is None:
            return 0.0
        signature = tuple(signature)
        agree = sum(1 for a, b in zip(signature, stored) if a == b)
        return agree / self.num_perm

    def to_payload(self) -> dict:
        return {
            "signatures": {
                doc_id: list(signature)
                for doc_id, signature in self._signatures.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: dict, num_perm: int, bands: int,
                     seed: int) -> "MinHashIndex":
        index = cls(num_perm=num_perm, bands=bands, seed=seed)
        for doc_id, signature in (payload.get("signatures") or {}).items():
            index.add(doc_id, tuple(signature))
        return index


# ----------------------------------------------------------------------
# The bundled corpus index
# ----------------------------------------------------------------------

class CorpusIndex:
    """Inverted + MinHash indexes over one corpus, persistable as JSON.

    The saved payload stamps both the config fingerprint (what blocking
    behaviour produced it) and the corpus fingerprint (what content it
    covers); :meth:`stale_for` compares the latter against a live
    corpus so callers know when a rebuild is due.
    """

    def __init__(self, config: Optional[IndexConfig] = None,
                 thesaurus: Optional[Thesaurus] = None):
        self.config = config if config is not None else IndexConfig()
        if thesaurus is not None:
            self.thesaurus = thesaurus
        elif self.config.use_thesaurus:
            self.thesaurus = Thesaurus.default()
        else:
            self.thesaurus = Thesaurus.empty()
        self.inverted = InvertedIndex()
        self.minhash = MinHashIndex(
            num_perm=self.config.num_perm,
            bands=self.config.bands,
            seed=self.config.seed,
        )
        #: Fingerprint of the corpus content this index reflects.
        self.corpus_fingerprint = ""

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def add_tree(self, doc_id: str, tree):
        """Index one schema under ``doc_id`` (its content hash)."""
        self.inverted.add(doc_id, schema_tokens(tree, self.config,
                                                self.thesaurus))
        self.minhash.add(
            doc_id, self.minhash.signature(schema_shingles(tree, self.config))
        )

    def remove(self, doc_id: str):
        self.inverted.remove(doc_id)
        self.minhash.remove(doc_id)

    @property
    def document_count(self) -> int:
        return self.inverted.document_count

    @classmethod
    def build(cls, corpus, config: Optional[IndexConfig] = None,
              thesaurus: Optional[Thesaurus] = None) -> "CorpusIndex":
        """Index every entry of ``corpus`` from scratch."""
        index = cls(config=config, thesaurus=thesaurus)
        for entry in corpus.entries():
            index.add_tree(entry.hash, corpus.load(entry.hash))
        index.corpus_fingerprint = corpus.fingerprint()
        return index

    def refresh(self, corpus) -> tuple[int, int]:
        """Bring the index up to date with ``corpus`` incrementally.

        Indexes entries the corpus has that the index lacks and drops
        indexed documents the corpus no longer contains; returns
        ``(added, removed)``.  Because document features are independent
        and the payload is canonical, an incrementally refreshed index
        serializes byte-identically to a full rebuild.
        """
        corpus_hashes = {entry.hash for entry in corpus.entries()}
        indexed = self.inverted.document_ids()
        added = removed = 0
        for doc_id in indexed - corpus_hashes:
            self.remove(doc_id)
            removed += 1
        for entry in corpus.entries():
            if entry.hash not in indexed:
                self.add_tree(entry.hash, corpus.load(entry.hash))
                added += 1
        self.corpus_fingerprint = corpus.fingerprint()
        return added, removed

    def stale_for(self, corpus) -> bool:
        """True when the corpus content changed since this index was built."""
        return self.corpus_fingerprint != corpus.fingerprint()

    def info(self) -> dict:
        """Index shape summary, shared with the segmented index.

        A monolithic index is one fully-resident structure: no
        segments, no tombstones, and nothing lazily loaded -- the
        zeros here make the corpus gauges meaningful across both
        index kinds.
        """
        return {
            "kind": "monolithic",
            "segments": 0,
            "docs": self.document_count,
            "tombstones": 0,
            "postings_bytes_loaded": 0,
            "config_fingerprint": self.config.fingerprint(),
        }

    # ------------------------------------------------------------------
    # Query-side feature extraction
    # ------------------------------------------------------------------

    def query_tokens(self, tree) -> Counter:
        return schema_tokens(tree, self.config, self.thesaurus)

    def query_signature(self, tree) -> tuple:
        return self.minhash.signature(schema_shingles(tree, self.config))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "version": INDEX_VERSION,
            "config": self.config.signature(),
            "config_fingerprint": self.config.fingerprint(),
            "corpus_fingerprint": self.corpus_fingerprint,
            "inverted": self.inverted.to_payload(),
            "minhash": self.minhash.to_payload(),
        }

    def save(self, path: Union[str, Path]) -> Path:
        """Write the canonical index payload atomically."""
        return atomic_write_text(path, canonical_json(self.to_payload()))

    @classmethod
    def from_payload(cls, payload: dict,
                     thesaurus: Optional[Thesaurus] = None) -> "CorpusIndex":
        version = payload.get("version")
        if version != INDEX_VERSION:
            raise IndexError_(
                f"index payload has version {version!r}; this build reads "
                f"version {INDEX_VERSION}"
            )
        config = IndexConfig.from_signature(payload.get("config") or {})
        index = cls(config=config, thesaurus=thesaurus)
        index.inverted = InvertedIndex.from_payload(
            payload.get("inverted") or {}
        )
        index.minhash = MinHashIndex.from_payload(
            payload.get("minhash") or {},
            num_perm=config.num_perm, bands=config.bands, seed=config.seed,
        )
        index.corpus_fingerprint = str(payload.get("corpus_fingerprint", ""))
        return index

    @classmethod
    def load(cls, path: Union[str, Path],
             thesaurus: Optional[Thesaurus] = None) -> "CorpusIndex":
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise IndexError_(f"no index at {str(path)!r}") from None
        except json.JSONDecodeError as exc:
            raise IndexError_(
                f"index {str(path)!r} is not valid JSON: {exc}"
            ) from None
        return cls.from_payload(payload, thesaurus=thesaurus)

    def __repr__(self):
        return (
            f"<CorpusIndex docs={self.document_count} "
            f"tokens={self.inverted.token_count} "
            f"config={self.config.fingerprint()}>"
        )
