"""Schema corpus: persistent schema collections with top-k search.

The pairwise QMatch engine is ``O(n*m)`` per schema pair, which makes
matching one query schema against a repository of thousands of schemas
quadratic in practice.  This subpackage adds the repository layer that
prunes candidate pairs before the expensive hybrid match runs:

- :class:`~repro.corpus.corpus.SchemaCorpus` -- a versioned on-disk
  collection of canonical XSD documents keyed by content hash, with an
  atomically-updated manifest;
- :class:`~repro.corpus.indexes.CorpusIndex` -- an inverted index over
  normalized label tokens (IDF-weighted) plus a MinHash/LSH index over
  node-label shingles for structural blocking;
- :class:`~repro.corpus.search.CorpusSearcher` -- two-stage top-k
  search: cheap index retrieval to a candidate shortlist, then a full
  QMatch rerank of the shortlist through the batch runner;
- :class:`~repro.corpus.segments.SegmentedCorpusIndex` -- the
  scale-out storage backend: immutable on-disk segments with packed
  postings, tombstoned removals and size-tiered compaction, presenting
  the same retrieve surface with byte-identical scores;
- :class:`~repro.corpus.shard.ShardedCorpusSearcher` -- stage-1 scan
  fan-out over deterministic segment shards, composing with the
  process-parallel rerank.

The CLI front ends are ``qmatch index build/add/info/compact`` and
``qmatch search``; the HTTP front end is ``POST /search`` on
``qmatch serve --corpus``.  See DESIGN.md §9 and §13.
"""

from repro.corpus.corpus import CorpusEntry, CorpusError, SchemaCorpus
from repro.corpus.indexes import (
    CorpusIndex,
    IndexConfig,
    InvertedIndex,
    MinHashIndex,
    schema_shingles,
    schema_tokens,
)
from repro.corpus.search import CorpusSearcher, SearchHit, SearchResult
from repro.corpus.segments import (
    Segment,
    SegmentedCorpusIndex,
    SegmentError,
)
from repro.corpus.shard import ShardedCorpusSearcher

__all__ = [
    "CorpusEntry",
    "CorpusError",
    "CorpusIndex",
    "CorpusSearcher",
    "IndexConfig",
    "InvertedIndex",
    "MinHashIndex",
    "SchemaCorpus",
    "SearchHit",
    "SearchResult",
    "Segment",
    "SegmentError",
    "SegmentedCorpusIndex",
    "ShardedCorpusSearcher",
    "schema_shingles",
    "schema_tokens",
]
