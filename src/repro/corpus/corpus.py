"""Persistent, content-addressed schema collections.

A :class:`SchemaCorpus` is a directory of canonical XSD documents plus
one manifest::

    <root>/
      manifest.json                  -- version, entries by content hash
      schemas/<hh>/<hash>.xsd        -- canonical serialization, sharded
                                        by the first two hash characters

Every schema is stored by the content hash of its *canonical* XSD text
(the same :func:`repro.service.store.content_hash` the batch service
keys results on), so formatting-only variants of a schema collapse to
one entry, corpus entries line up with result-store keys, and adding
the same schema twice is a no-op.

The manifest is deterministic -- canonical JSON, no timestamps, entries
keyed by hash -- so two corpora built from the same schemas in any
order are byte-identical, and it is updated atomically (temp file +
rename), so a crash mid-add never leaves a corrupt manifest.  Schema
names must be unique within a corpus: they are the human handle
``qmatch search`` results and ``remove`` calls use.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.service.store import atomic_write_text, canonical_json, content_hash
from repro.xsd.model import SchemaTree

#: Manifest format version (bumped on incompatible layout changes).
MANIFEST_VERSION = 1

MANIFEST_NAME = "manifest.json"
SCHEMAS_DIR = "schemas"


class CorpusError(ValueError):
    """A corpus operation failed (missing entry, name clash, bad layout)."""


@dataclass(frozen=True)
class CorpusEntry:
    """One manifest row: the identity and shape of a stored schema.

    ``source_kind`` records what the schema was ingested from
    (``xsd`` | ``sql`` | ``json``; the stored text is always canonical
    XSD).  ``profile`` optionally carries the instance-evidence profiles
    (``{node_path: profile_dict}``) computed at add time.  Both are
    omitted from the manifest at their defaults, so a corpus of plain
    XSD schemas serializes byte-identically to the pre-ingest format.
    """

    hash: str
    name: str
    nodes: int
    max_depth: int
    source_kind: str = "xsd"
    profile: Optional[dict] = None

    def as_dict(self) -> dict:
        payload = {
            "name": self.name,
            "nodes": self.nodes,
            "max_depth": self.max_depth,
        }
        if self.source_kind != "xsd":
            payload["source_kind"] = self.source_kind
        if self.profile:
            payload["profile"] = self.profile
        return payload


class SchemaCorpus:
    """A versioned on-disk collection of parsed schemas.

    Opening a path loads the manifest when present and starts an empty
    corpus otherwise; every mutation persists the manifest atomically
    before returning.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self._entries: dict[str, CorpusEntry] = {}
        manifest_path = self.manifest_path
        if manifest_path.exists():
            self._load_manifest(manifest_path)
        else:
            self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def schema_path(self, schema_hash: str) -> Path:
        return self.root / SCHEMAS_DIR / schema_hash[:2] / f"{schema_hash}.xsd"

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def entries(self) -> list[CorpusEntry]:
        """Every entry, sorted by (name, hash) -- a deterministic listing."""
        return sorted(
            self._entries.values(), key=lambda entry: (entry.name, entry.hash)
        )

    def entry(self, ref: str) -> CorpusEntry:
        """Look an entry up by content hash or by schema name."""
        found = self._entries.get(ref)
        if found is not None:
            return found
        for candidate in self._entries.values():
            if candidate.name == ref:
                return candidate
        raise CorpusError(
            f"no schema {ref!r} in corpus {str(self.root)!r} "
            f"({len(self._entries)} entries)"
        )

    def text(self, ref: str) -> str:
        """The stored canonical XSD text of one entry."""
        entry = self.entry(ref)
        path = self.schema_path(entry.hash)
        try:
            return path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise CorpusError(
                f"corpus entry {entry.name!r} is missing its schema file "
                f"{str(path)!r} (manifest and schema dir out of sync)"
            ) from None

    def load(self, ref: str) -> SchemaTree:
        """Parse one stored schema back into a tree.

        An entry that carries instance profiles gets them re-attached to
        the parsed tree, so corpus-loaded schemas match with the same
        evidence they were added with.
        """
        from repro.xsd.parser import parse_xsd

        entry = self.entry(ref)
        tree = parse_xsd(self.text(entry.hash), name=entry.name)
        if entry.profile:
            from repro.ingest.profile import attach_profiles

            attach_profiles(tree, entry.profile)
        return tree

    def fingerprint(self) -> str:
        """Content fingerprint of the whole corpus.

        The sha256 over the sorted entry hashes: equal fingerprints mean
        equal schema *content*, regardless of insertion order or names.
        The search index stamps this to detect staleness.
        """
        material = "\n".join(sorted(self._entries))
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def __contains__(self, ref: str) -> bool:
        if ref in self._entries:
            return True
        return any(entry.name == ref for entry in self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self.entries())

    def __repr__(self):
        return (
            f"<SchemaCorpus root={str(self.root)!r} "
            f"entries={len(self._entries)}>"
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, schema: Union[SchemaTree, str],
            name: Optional[str] = None,
            source_kind: str = "xsd",
            profile: Optional[dict] = None) -> CorpusEntry:
        """Add a schema (tree or XSD text); returns its entry.

        The schema is canonicalized before hashing, so re-adding a
        reformatted copy of a stored schema is a no-op returning the
        existing entry.  A *different* schema under an already-used name
        is rejected -- names are the corpus's human-facing handle.
        ``source_kind`` records what the schema was ingested from;
        ``profile`` optionally attaches instance-evidence profiles
        (``{node_path: profile_dict}``) to the entry.
        """
        from repro.xsd.parser import parse_xsd
        from repro.xsd.serializer import to_xsd

        if isinstance(schema, SchemaTree):
            tree = schema
        else:
            tree = parse_xsd(schema, name=name)
        text = to_xsd(tree)
        schema_hash = content_hash(text)
        entry_name = name or tree.name
        existing = self._entries.get(schema_hash)
        if existing is not None:
            return existing
        for other in self._entries.values():
            if other.name == entry_name:
                raise CorpusError(
                    f"corpus already has a different schema named "
                    f"{entry_name!r} (hash {other.hash[:12]}); remove it "
                    "first or add under another name"
                )
        entry = CorpusEntry(
            hash=schema_hash,
            name=entry_name,
            nodes=tree.size,
            max_depth=tree.max_depth,
            source_kind=source_kind,
            profile=profile or None,
        )
        atomic_write_text(self.schema_path(schema_hash), text)
        self._entries[schema_hash] = entry
        self._write_manifest()
        return entry

    def add_many(self, schemas: Iterable[Union[SchemaTree, str]],
                 source_kind: str = "xsd") -> list[CorpusEntry]:
        """Add a batch of schemas with ONE manifest write at the end.

        :meth:`add` rewrites the full manifest per schema, which makes
        bulk ingest O(n²) in manifest bytes; batching commits the whole
        batch atomically instead, so ingesting schema 100 001 costs the
        same as schema 1.  Returns the entries that were actually new
        (duplicates are skipped, as in :meth:`add`).  If an item fails
        (e.g. a name conflict), the schemas already staged are still
        committed before the error propagates -- the manifest never
        references a schema file that was not written.
        """
        from repro.xsd.parser import parse_xsd
        from repro.xsd.serializer import to_xsd

        added: list[CorpusEntry] = []
        try:
            for schema in schemas:
                if isinstance(schema, SchemaTree):
                    tree = schema
                else:
                    tree = parse_xsd(schema)
                text = to_xsd(tree)
                schema_hash = content_hash(text)
                if schema_hash in self._entries:
                    continue
                entry_name = tree.name
                for other in self._entries.values():
                    if other.name == entry_name:
                        raise CorpusError(
                            f"corpus already has a different schema named "
                            f"{entry_name!r} (hash {other.hash[:12]}); "
                            "remove it first or add under another name"
                        )
                entry = CorpusEntry(
                    hash=schema_hash,
                    name=entry_name,
                    nodes=tree.size,
                    max_depth=tree.max_depth,
                    source_kind=source_kind,
                )
                atomic_write_text(self.schema_path(schema_hash), text)
                self._entries[schema_hash] = entry
                added.append(entry)
        finally:
            if added:
                self._write_manifest()
        return added

    def add_file(self, path: Union[str, Path],
                 name: Optional[str] = None,
                 kind: Optional[str] = None,
                 profile: Optional[dict] = None) -> CorpusEntry:
        """Parse a schema file of any supported kind and add it.

        ``kind`` forces the parser (``xsd`` | ``sql`` | ``json``);
        ``None`` detects it from the extension, defaulting to XSD --
        the historical behaviour.  XSD files keep their include/import
        resolution relative to the file's directory.
        """
        from repro.ingest import detect_kind

        path = Path(path)
        resolved = kind or detect_kind(path)
        if resolved == "xsd":
            from repro.xsd.parser import parse_xsd_file

            return self.add(
                parse_xsd_file(path), name=name, profile=profile
            )
        from repro.ingest import load_schema_any

        tree, resolved = load_schema_any(path, kind=resolved, name=name)
        return self.add(
            tree, name=name, source_kind=resolved, profile=profile
        )

    def remove(self, ref: str) -> CorpusEntry:
        """Remove one entry (by hash or name); returns what was removed."""
        entry = self.entry(ref)
        del self._entries[entry.hash]
        self._write_manifest()
        path = self.schema_path(entry.hash)
        try:
            path.unlink()
        except FileNotFoundError:
            pass
        return entry

    # ------------------------------------------------------------------
    # Manifest persistence
    # ------------------------------------------------------------------

    def manifest_payload(self) -> dict:
        """The JSON-friendly manifest (deterministic for equal corpora)."""
        return {
            "version": MANIFEST_VERSION,
            "fingerprint": self.fingerprint(),
            "schemas": {
                entry.hash: entry.as_dict()
                for entry in self._entries.values()
            },
        }

    def _write_manifest(self):
        atomic_write_text(
            self.manifest_path, canonical_json(self.manifest_payload())
        )

    def _load_manifest(self, path: Path):
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise CorpusError(
                f"corpus manifest {str(path)!r} is not valid JSON: {exc}"
            ) from None
        version = data.get("version")
        if version != MANIFEST_VERSION:
            raise CorpusError(
                f"corpus manifest {str(path)!r} has version {version!r}; "
                f"this build reads version {MANIFEST_VERSION}"
            )
        schemas = data.get("schemas")
        if not isinstance(schemas, dict):
            raise CorpusError(
                f'corpus manifest {str(path)!r} must carry a "schemas" object'
            )
        for schema_hash, meta in schemas.items():
            self._entries[schema_hash] = CorpusEntry(
                hash=schema_hash,
                name=str(meta.get("name", schema_hash[:12])),
                nodes=int(meta.get("nodes", 0)),
                max_depth=int(meta.get("max_depth", 0)),
                source_kind=str(meta.get("source_kind", "xsd")),
                profile=meta.get("profile") or None,
            )
