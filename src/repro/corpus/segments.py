"""Segmented corpus index: immutable segments, fan-out search, compaction.

The monolithic :class:`~repro.corpus.indexes.CorpusIndex` keeps every
posting of every schema in one mutable in-memory structure that is
serialized (and re-loaded) as a unit.  That is the right shape for a
hundred schemas and the wrong one for a hundred thousand: every ``add``
rewrites the whole payload, and opening the index deserializes all of
it before the first query.  This module is the Lucene-shaped answer::

    <corpus>/segments/
      manifest.json          -- live segments, tombstones, fingerprints
      seg-000001/
        meta.json            -- doc ids (ordinal order), sizes; read at open
        postings.bin         -- packed per-doc (token, tf) vectors
        minhash.bin          -- packed uint64 MinHash signatures

- **Segments are immutable.**  Each ``add`` batch seals one new segment
  directory and never touches the previous ones; incremental indexing
  therefore costs memory and I/O proportional to the *batch*, not the
  corpus.
- **Postings are packed and lazy.**  Segment payloads serialize with
  ``struct``/``array`` (little-endian, fixed-width) instead of JSON and
  load on the first search, not at open -- ``qmatch index info`` over a
  100k-schema corpus reads only the small ``meta.json`` headers.
- **Removals are tombstones.**  The manifest records removed doc ids
  per segment; searches skip them, and compaction drops them for good.
- **Compaction is size-tiered.**  ``add`` batches produce many small
  segments; once :data:`COMPACT_TRIGGER` segments accumulate in one
  size tier they are folded into one (``qmatch index compact`` folds
  everything).
- **Scores are byte-comparable to the monolithic index.**  IDF and
  document norms are computed from document frequencies *merged across
  segments* (minus tombstones) with the exact float expressions of
  :class:`~repro.corpus.indexes.InvertedIndex`, and each document's
  token vector is stored in its original extraction order -- so the
  per-document cosine/BM25 floats come out bit-identical to a
  monolithic build over the same live documents (asserted in
  ``tests/test_corpus_segments.py``).

:class:`SegmentedCorpusIndex` exposes the ``CorpusIndex`` retrieve
surface (``query_tokens`` / ``query_signature`` / ``.inverted`` /
``.minhash`` / ``stale_for``), so
:class:`~repro.corpus.search.CorpusSearcher` works on either index
unchanged; ``retrieve_scores`` additionally fans the lexical scan
across segments in parallel and supports a candidate-admission budget
(``max_candidates``) that turns the full postings scan into work
proportional to the rarest query tokens plus the budget.
"""

from __future__ import annotations

import json
import math
import os
import shutil
import struct
import sys
from array import array
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.corpus.indexes import (
    IndexConfig,
    MinHashIndex,
    schema_shingles,
    schema_tokens,
)
from repro.linguistic.thesaurus import Thesaurus
from repro.obs.log import NULL_LOGGER
from repro.service.store import (
    atomic_write_bytes,
    atomic_write_text,
    canonical_json,
)

#: Segment payload format version (bumped on incompatible changes).
SEGMENTS_VERSION = 1

#: Directory (under the corpus root) holding the segmented index.
SEGMENTS_DIR = "segments"

SEGMENT_MANIFEST_NAME = "manifest.json"
SEGMENT_META_NAME = "meta.json"
SEGMENT_POSTINGS_NAME = "postings.bin"
SEGMENT_MINHASH_NAME = "minhash.bin"

_POSTINGS_MAGIC = b"QSP1"
_MINHASH_MAGIC = b"QSM1"

#: Auto-compaction: fold a size tier once it holds this many segments.
COMPACT_TRIGGER = 4

#: Size-tier width: segments whose live-doc counts fall within one
#: power of this factor share a tier (classic size-tiered policy).
TIER_FACTOR = 4


class SegmentError(ValueError):
    """A segment payload, manifest or operation is unusable."""


# ----------------------------------------------------------------------
# Packed payload codecs
# ----------------------------------------------------------------------

def _pack_u32_array(values) -> bytes:
    packed = array("I", values)
    if sys.byteorder != "little":
        packed.byteswap()
    return packed.tobytes()


def _unpack_u32_array(blob: bytes) -> array:
    packed = array("I")
    packed.frombytes(blob)
    if sys.byteorder != "little":
        packed.byteswap()
    return packed


def pack_postings(doc_items: list) -> bytes:
    """Pack per-document ordered ``(token, tf)`` vectors.

    Layout (all little-endian): magic, ``u32 n_docs``, ``u32 n_tokens``,
    a token table (``u16`` length + UTF-8 bytes per token, ids by table
    order), then per document ``u32 n_items`` followed by ``n_items``
    ``(u32 token_id, u32 tf)`` pairs.  The per-document *order* of the
    pairs is preserved exactly -- it is the token-extraction order the
    monolithic index accumulates document norms in, which is what keeps
    segmented scores byte-identical.
    """
    token_ids: dict[str, int] = {}
    for items in doc_items:
        for token, _ in items:
            if token not in token_ids:
                token_ids[token] = len(token_ids)
    out = bytearray()
    out += _POSTINGS_MAGIC
    out += struct.pack("<II", len(doc_items), len(token_ids))
    for token in token_ids:
        raw = token.encode("utf-8")
        if len(raw) > 0xFFFF:
            raise SegmentError(f"token too long to pack: {len(raw)} bytes")
        out += struct.pack("<H", len(raw))
        out += raw
    for items in doc_items:
        out += struct.pack("<I", len(items))
        if items:
            flat = []
            for token, tf in items:
                flat.append(token_ids[token])
                flat.append(tf)
            out += _pack_u32_array(flat)
    return bytes(out)


def unpack_postings(blob: bytes) -> list:
    """Inverse of :func:`pack_postings`: per-doc ordered (token, tf) lists."""
    if blob[:4] != _POSTINGS_MAGIC:
        raise SegmentError("postings payload has a bad magic header")
    offset = 4
    n_docs, n_tokens = struct.unpack_from("<II", blob, offset)
    offset += 8
    tokens = []
    for _ in range(n_tokens):
        (length,) = struct.unpack_from("<H", blob, offset)
        offset += 2
        tokens.append(blob[offset:offset + length].decode("utf-8"))
        offset += length
    docs = []
    for _ in range(n_docs):
        (n_items,) = struct.unpack_from("<I", blob, offset)
        offset += 4
        flat = _unpack_u32_array(blob[offset:offset + 8 * n_items])
        offset += 8 * n_items
        docs.append([
            (tokens[flat[2 * i]], flat[2 * i + 1]) for i in range(n_items)
        ])
    return docs


def pack_signatures(signatures: list, num_perm: int) -> bytes:
    """Pack MinHash signatures as a flat little-endian ``u64`` array."""
    out = bytearray()
    out += _MINHASH_MAGIC
    out += struct.pack("<IH", len(signatures), num_perm)
    flat = array("Q")
    for signature in signatures:
        if len(signature) != num_perm:
            raise SegmentError(
                f"signature length {len(signature)} != num_perm {num_perm}"
            )
        flat.extend(signature)
    if sys.byteorder != "little":
        flat.byteswap()
    out += flat.tobytes()
    return bytes(out)


def unpack_signatures(blob: bytes) -> tuple:
    """Inverse of :func:`pack_signatures`: ``(signatures, num_perm)``."""
    if blob[:4] != _MINHASH_MAGIC:
        raise SegmentError("minhash payload has a bad magic header")
    n_docs, num_perm = struct.unpack_from("<IH", blob, 4)
    flat = array("Q")
    flat.frombytes(blob[10:10 + 8 * n_docs * num_perm])
    if sys.byteorder != "little":
        flat.byteswap()
    signatures = [
        tuple(flat[i * num_perm:(i + 1) * num_perm]) for i in range(n_docs)
    ]
    return signatures, num_perm


# ----------------------------------------------------------------------
# One immutable segment
# ----------------------------------------------------------------------

class Segment:
    """One sealed segment: metadata eagerly, packed payloads lazily.

    Constructing a :class:`Segment` reads only ``meta.json`` (doc ids
    and sizes); :meth:`load` materializes postings, per-doc token maps,
    lengths, signatures and LSH buckets on the first search that needs
    them.  ``bytes_loaded`` reports how many packed payload bytes this
    segment has actually pulled into memory (the
    ``qmatch_corpus_postings_loaded_bytes`` gauge).
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        meta_path = self.root / SEGMENT_META_NAME
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise SegmentError(
                f"segment {str(self.root)!r} has no {SEGMENT_META_NAME}"
            ) from None
        except json.JSONDecodeError as exc:
            raise SegmentError(
                f"segment meta {str(meta_path)!r} is not valid JSON: {exc}"
            ) from None
        version = meta.get("version")
        if version != SEGMENTS_VERSION:
            raise SegmentError(
                f"segment {str(self.root)!r} has version {version!r}; this "
                f"build reads version {SEGMENTS_VERSION}"
            )
        self.seg_id = str(meta.get("id", self.root.name))
        self.doc_ids: list[str] = list(meta.get("docs") or ())
        self.num_perm = int(meta.get("num_perm", 0))
        self.payload_bytes = int(meta.get("payload_bytes", 0))
        self.bytes_loaded = 0
        self._doc_id_set: Optional[frozenset] = None
        self._doc_items = None
        self._doc_maps = None
        self._lengths = None
        self._postings = None
        self._signatures = None
        self._buckets = None

    # -- construction ---------------------------------------------------

    @staticmethod
    def write(root: Union[str, Path], seg_id: str, docs: list,
              num_perm: int) -> "Segment":
        """Seal ``docs`` (``(doc_id, ordered_items, signature)`` rows)
        into a new segment directory and return it opened.

        ``meta.json`` is written last: a crash mid-seal leaves a
        directory the manifest never references and :meth:`Segment`
        refuses to open -- never a half-readable segment.
        """
        root = Path(root)
        postings_blob = pack_postings([items for _, items, _ in docs])
        minhash_blob = pack_signatures(
            [signature for _, _, signature in docs], num_perm
        )
        atomic_write_bytes(root / SEGMENT_POSTINGS_NAME, postings_blob)
        atomic_write_bytes(root / SEGMENT_MINHASH_NAME, minhash_blob)
        meta = {
            "version": SEGMENTS_VERSION,
            "id": seg_id,
            "docs": [doc_id for doc_id, _, _ in docs],
            "num_perm": num_perm,
            "payload_bytes": len(postings_blob) + len(minhash_blob),
        }
        atomic_write_text(root / SEGMENT_META_NAME, canonical_json(meta))
        return Segment(root)

    # -- lazy payload ---------------------------------------------------

    @property
    def doc_count(self) -> int:
        return len(self.doc_ids)

    @property
    def doc_id_set(self) -> frozenset:
        """Membership view of :attr:`doc_ids`, built once per segment --
        liveness checks against N segments never materialize a
        corpus-sized union."""
        if self._doc_id_set is None:
            self._doc_id_set = frozenset(self.doc_ids)
        return self._doc_id_set

    @property
    def loaded(self) -> bool:
        return self._doc_items is not None

    def load(self, hasher: MinHashIndex) -> "Segment":
        """Materialize the packed payloads (idempotent)."""
        if self.loaded:
            return self
        postings_blob = (self.root / SEGMENT_POSTINGS_NAME).read_bytes()
        minhash_blob = (self.root / SEGMENT_MINHASH_NAME).read_bytes()
        self._doc_items = unpack_postings(postings_blob)
        if len(self._doc_items) != len(self.doc_ids):
            raise SegmentError(
                f"segment {self.seg_id}: postings cover "
                f"{len(self._doc_items)} docs, meta lists {len(self.doc_ids)}"
            )
        signatures, num_perm = unpack_signatures(minhash_blob)
        if num_perm != self.num_perm or len(signatures) != len(self.doc_ids):
            raise SegmentError(
                f"segment {self.seg_id}: minhash payload does not match meta"
            )
        self._signatures = signatures
        self._doc_maps = [dict(items) for items in self._doc_items]
        self._lengths = [
            sum(tf for _, tf in items) for items in self._doc_items
        ]
        postings: dict[str, list] = {}
        for ordinal, items in enumerate(self._doc_items):
            for token, tf in items:
                postings.setdefault(token, []).append((ordinal, tf))
        self._postings = postings
        buckets: dict[tuple, list] = {}
        for ordinal, signature in enumerate(signatures):
            for key in hasher.band_keys(signature):
                buckets.setdefault(key, []).append(ordinal)
        self._buckets = buckets
        self.bytes_loaded = len(postings_blob) + len(minhash_blob)
        return self

    def items_of(self, ordinal: int) -> list:
        """The ordered (token, tf) vector of one document."""
        return self._doc_items[ordinal]

    def map_of(self, ordinal: int) -> dict:
        return self._doc_maps[ordinal]

    def length_of(self, ordinal: int) -> int:
        return self._lengths[ordinal]

    def signature_of(self, ordinal: int) -> tuple:
        return self._signatures[ordinal]

    @property
    def postings(self) -> dict:
        return self._postings

    @property
    def buckets(self) -> dict:
        return self._buckets

    def __repr__(self):
        state = "loaded" if self.loaded else "lazy"
        return f"<Segment {self.seg_id} docs={self.doc_count} {state}>"


# ----------------------------------------------------------------------
# Facade views (CorpusIndex API compatibility)
# ----------------------------------------------------------------------

class _SegmentedInvertedView:
    """``CorpusIndex.inverted``-shaped read facade over all segments."""

    def __init__(self, owner: "SegmentedCorpusIndex"):
        self._owner = owner

    @property
    def document_count(self) -> int:
        return self._owner.document_count

    def document_ids(self) -> set:
        return self._owner.live_doc_ids()

    def scores(self, query_tokens, scorer: str = "cosine") -> dict:
        return self._owner._lexical_scores(query_tokens, scorer=scorer)


class _SegmentedMinHashView:
    """``CorpusIndex.minhash``-shaped read facade over all segments."""

    def __init__(self, owner: "SegmentedCorpusIndex"):
        self._owner = owner

    @property
    def document_count(self) -> int:
        return self._owner.document_count

    def candidates(self, signature: tuple) -> set:
        return self._owner._structural_candidates(tuple(signature))

    def estimate(self, signature: tuple, doc_id: str) -> float:
        return self._owner._estimate(tuple(signature), doc_id)


# ----------------------------------------------------------------------
# The segmented index
# ----------------------------------------------------------------------

class SegmentedCorpusIndex:
    """Immutable-segment index with the monolithic retrieve surface.

    Mutations (:meth:`add_batch`, :meth:`remove`, :meth:`refresh`,
    :meth:`compact`) persist the manifest atomically before returning;
    segment payloads themselves are written once and never modified.
    ``max_candidates`` (off by default) bounds the lexical scan per
    query: LSH-bucket candidates plus documents from the rarest query
    tokens' postings are admitted until the budget fills, and only the
    admitted documents are scored -- with *exactly* the floats the full
    scan would give them.
    """

    def __init__(self, root: Union[str, Path],
                 config: Optional[IndexConfig] = None,
                 thesaurus: Optional[Thesaurus] = None,
                 auto_compact: bool = True,
                 compact_trigger: int = COMPACT_TRIGGER,
                 tier_factor: int = TIER_FACTOR,
                 max_candidates: Optional[int] = None,
                 fanout_workers: Optional[int] = None,
                 log=NULL_LOGGER):
        self.root = Path(root)
        self.config = config if config is not None else IndexConfig()
        if thesaurus is not None:
            self.thesaurus = thesaurus
        elif self.config.use_thesaurus:
            self.thesaurus = Thesaurus.default()
        else:
            self.thesaurus = Thesaurus.empty()
        self._hasher = MinHashIndex(
            num_perm=self.config.num_perm,
            bands=self.config.bands,
            seed=self.config.seed,
        )
        self.auto_compact = auto_compact
        self.compact_trigger = compact_trigger
        self.tier_factor = tier_factor
        self.max_candidates = max_candidates
        self.fanout_workers = fanout_workers
        #: Structured event sink (compaction events; disabled default).
        self.log = log
        self.corpus_fingerprint = ""
        #: Live segments by id, in manifest (creation) order.
        self._segments: dict[str, Segment] = {}
        #: seg id -> set of tombstoned doc ids.
        self._tombstones: dict[str, set] = {}
        self._next_id = 1
        self.inverted = _SegmentedInvertedView(self)
        self.minhash = _SegmentedMinHashView(self)
        #: Scan telemetry of the last retrieve (docs scored, postings
        #: entries walked) -- what the scale benchmark asserts on.
        self.last_scan: dict = {}
        self._stats = None
        self._norms: dict[str, float] = {}
        self._doc_loc: Optional[dict] = None
        self._executor: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------
    # Layout / persistence
    # ------------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / SEGMENT_MANIFEST_NAME

    def manifest_payload(self) -> dict:
        return {
            "version": SEGMENTS_VERSION,
            "config": self.config.signature(),
            "config_fingerprint": self.config.fingerprint(),
            "corpus_fingerprint": self.corpus_fingerprint,
            "next_id": self._next_id,
            "segments": [
                {"id": seg_id, "docs": segment.doc_count}
                for seg_id, segment in self._segments.items()
            ],
            "tombstones": {
                seg_id: sorted(dead)
                for seg_id, dead in self._tombstones.items() if dead
            },
        }

    def _save_manifest(self):
        atomic_write_text(
            self.manifest_path, canonical_json(self.manifest_payload())
        )

    @classmethod
    def open(cls, root: Union[str, Path],
             thesaurus: Optional[Thesaurus] = None,
             **kwargs) -> "SegmentedCorpusIndex":
        """Open an existing segmented index (manifest + segment metas)."""
        root = Path(root)
        manifest_path = root / SEGMENT_MANIFEST_NAME
        try:
            payload = json.loads(manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise SegmentError(
                f"no segmented index at {str(root)!r} (missing "
                f"{SEGMENT_MANIFEST_NAME}); build one with "
                "qmatch index build --segmented"
            ) from None
        except json.JSONDecodeError as exc:
            raise SegmentError(
                f"segment manifest {str(manifest_path)!r} is not valid "
                f"JSON: {exc}"
            ) from None
        version = payload.get("version")
        if version != SEGMENTS_VERSION:
            raise SegmentError(
                f"segment manifest {str(manifest_path)!r} has version "
                f"{version!r}; this build reads version {SEGMENTS_VERSION}"
            )
        config = IndexConfig.from_signature(payload.get("config") or {})
        index = cls(root, config=config, thesaurus=thesaurus, **kwargs)
        index.corpus_fingerprint = str(payload.get("corpus_fingerprint", ""))
        index._next_id = int(payload.get("next_id", 1))
        for row in payload.get("segments") or ():
            seg_id = str(row.get("id"))
            index._segments[seg_id] = Segment(root / seg_id)
        for seg_id, dead in (payload.get("tombstones") or {}).items():
            if seg_id in index._segments:
                index._tombstones[seg_id] = set(dead)
        return index

    @classmethod
    def build(cls, corpus, config: Optional[IndexConfig] = None,
              thesaurus: Optional[Thesaurus] = None,
              root: Optional[Union[str, Path]] = None,
              **kwargs) -> "SegmentedCorpusIndex":
        """Index every corpus entry from scratch into one segment.

        An existing segmented index at ``root`` is replaced.  Building
        twice over the same corpus and config produces byte-identical
        segment files and manifest (no timestamps anywhere).
        """
        root = Path(root) if root is not None else corpus.root / SEGMENTS_DIR
        if root.exists():
            shutil.rmtree(root)
        index = cls(root, config=config, thesaurus=thesaurus, **kwargs)
        index._seal_segment(
            (entry.hash, corpus.load(entry.hash))
            for entry in corpus.entries()
        )
        index.corpus_fingerprint = corpus.fingerprint()
        index._save_manifest()
        return index

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def live_doc_ids(self) -> set:
        """Every indexed, non-tombstoned document id (meta-only; no
        payload load)."""
        live = set()
        for seg_id, segment in self._segments.items():
            dead = self._tombstones.get(seg_id, ())
            live.update(
                doc_id for doc_id in segment.doc_ids if doc_id not in dead
            )
        return live

    @property
    def document_count(self) -> int:
        total = 0
        for seg_id, segment in self._segments.items():
            total += segment.doc_count - len(self._tombstones.get(seg_id, ()))
        return total

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def tombstone_count(self) -> int:
        return sum(len(dead) for dead in self._tombstones.values())

    def segments(self) -> list:
        return list(self._segments.values())

    def info(self) -> dict:
        """Shape summary for ``qmatch index info`` and the metrics gauges."""
        return {
            "kind": "segmented",
            "segments": self.segment_count,
            "docs": self.document_count,
            "tombstones": self.tombstone_count,
            "postings_bytes_loaded": sum(
                segment.bytes_loaded for segment in self._segments.values()
            ),
            "payload_bytes": sum(
                segment.payload_bytes for segment in self._segments.values()
            ),
            "config_fingerprint": self.config.fingerprint(),
        }

    def stale_for(self, corpus) -> bool:
        """True when the corpus content changed since the last
        build/refresh stamped the manifest."""
        return self.corpus_fingerprint != corpus.fingerprint()

    # ------------------------------------------------------------------
    # Query-side feature extraction (CorpusIndex-compatible)
    # ------------------------------------------------------------------

    def query_tokens(self, tree):
        return schema_tokens(tree, self.config, self.thesaurus)

    def query_signature(self, tree) -> tuple:
        return self._hasher.signature(schema_shingles(tree, self.config))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def _doc_features(self, tree) -> tuple:
        tokens = schema_tokens(tree, self.config, self.thesaurus)
        # Keep the extraction order: it is the accumulation order the
        # monolithic index computes document norms in.
        items = [(token, int(tf)) for token, tf in tokens.items() if tf > 0]
        signature = self._hasher.signature(
            schema_shingles(tree, self.config)
        )
        return items, signature

    def _is_live(self, doc_id: str) -> bool:
        """Whether ``doc_id`` is indexed and not tombstoned -- a
        per-segment set probe, never a corpus-sized union (the add path
        must stay corpus-size independent in memory)."""
        for seg_id, segment in self._segments.items():
            if (doc_id in segment.doc_id_set
                    and doc_id not in self._tombstones.get(seg_id, ())):
                return True
        return False

    def _seal_segment(self, trees: Iterable, known: Optional[set] = None,
                      ) -> int:
        """Seal ``(doc_id, tree)`` pairs into one new segment; returns
        how many documents it holds (0 seals nothing)."""
        docs = []
        seen = set()
        for doc_id, tree in trees:
            if doc_id in seen:
                continue
            if known is not None:
                if doc_id in known:
                    continue
            elif self._is_live(doc_id):
                continue
            items, signature = self._doc_features(tree)
            docs.append((doc_id, items, signature))
            seen.add(doc_id)
        if not docs:
            return 0
        seg_id = f"seg-{self._next_id:06d}"
        self._next_id += 1
        segment = Segment.write(
            self.root / seg_id, seg_id, docs, self.config.num_perm
        )
        self._segments[seg_id] = segment
        self._invalidate()
        return len(docs)

    def add_batch(self, trees: Iterable) -> int:
        """Index a batch of ``(doc_id, tree)`` pairs as one immutable
        segment; already-live doc ids are skipped.

        Existing segments are neither loaded nor rewritten -- the cost
        of batch N+1 is independent of batches 1..N (auto-compaction,
        when it triggers, is the explicit amortized exception; pass
        ``auto_compact=False`` to schedule it yourself).
        """
        added = self._seal_segment(trees)
        if added:
            self._save_manifest()
            if self.auto_compact:
                self.compact(full=False)
        return added

    def remove(self, doc_id: str) -> bool:
        """Tombstone one live document; returns whether it was found.

        The segment payload is untouched; a segment whose documents are
        all tombstoned is dropped entirely.
        """
        changed = self._tombstone(doc_id)
        if changed:
            self._drop_dead_segments()
            self._save_manifest()
        return changed

    def _tombstone(self, doc_id: str) -> bool:
        for seg_id, segment in self._segments.items():
            dead = self._tombstones.setdefault(seg_id, set())
            if doc_id in dead or doc_id not in segment.doc_id_set:
                continue
            dead.add(doc_id)
            self._invalidate()
            return True
        return False

    def _drop_dead_segments(self):
        for seg_id in list(self._segments):
            segment = self._segments[seg_id]
            dead = self._tombstones.get(seg_id, set())
            if segment.doc_count and len(dead) == segment.doc_count:
                del self._segments[seg_id]
                self._tombstones.pop(seg_id, None)
                shutil.rmtree(segment.root, ignore_errors=True)
                self._invalidate()

    def refresh(self, corpus) -> tuple:
        """Bring the index up to date with ``corpus`` incrementally.

        New corpus entries seal into one new segment; entries the
        corpus no longer holds are tombstoned.  Returns
        ``(added, removed)`` and stamps the corpus fingerprint -- one
        manifest write for the whole diff.
        """
        corpus_hashes = {entry.hash for entry in corpus.entries()}
        live = self.live_doc_ids()
        removed = 0
        for doc_id in sorted(live - corpus_hashes):
            if self._tombstone(doc_id):
                removed += 1
        self._drop_dead_segments()
        added = self._seal_segment(
            (
                (entry.hash, corpus.load(entry.hash))
                for entry in corpus.entries()
                if entry.hash not in live
            ),
            known=set(),
        )
        self.corpus_fingerprint = corpus.fingerprint()
        self._save_manifest()
        if self.auto_compact:
            self.compact(full=False)
        return added, removed

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def _live_rows(self, seg_ids) -> list:
        """Live ``(doc_id, items, signature)`` rows of the given
        segments, in (segment, ordinal) order."""
        rows = []
        for seg_id in seg_ids:
            segment = self._segments[seg_id].load(self._hasher)
            dead = self._tombstones.get(seg_id, ())
            for ordinal, doc_id in enumerate(segment.doc_ids):
                if doc_id in dead:
                    continue
                rows.append((
                    doc_id,
                    segment.items_of(ordinal),
                    segment.signature_of(ordinal),
                ))
        return rows

    def _merge_segments(self, seg_ids: list) -> int:
        """Fold ``seg_ids`` into one new segment, dropping tombstones."""
        rows = self._live_rows(seg_ids)
        dropped = sum(
            len(self._tombstones.get(seg_id, ())) for seg_id in seg_ids
        )
        old = [self._segments[seg_id] for seg_id in seg_ids]
        new_id = f"seg-{self._next_id:06d}"
        self._next_id += 1
        merged = None
        if rows:
            merged = Segment.write(
                self.root / new_id, new_id, rows, self.config.num_perm
            )
        # Rebuild the ordered segment map: merged segment takes the
        # first merged member's position, the rest disappear.
        out: dict[str, Segment] = {}
        placed = False
        for seg_id, segment in self._segments.items():
            if seg_id in seg_ids:
                if merged is not None and not placed:
                    out[new_id] = merged
                    placed = True
                continue
            out[seg_id] = segment
        if merged is not None and not placed:
            out[new_id] = merged
        self._segments = out
        for seg_id in seg_ids:
            self._tombstones.pop(seg_id, None)
        self._invalidate()
        self._save_manifest()
        for segment in old:
            shutil.rmtree(segment.root, ignore_errors=True)
        return dropped

    def _tier_of(self, live_docs: int) -> int:
        return int(math.log(max(live_docs, 1), self.tier_factor))

    def compact(self, full: bool = True) -> dict:
        """Fold segments together and drop tombstoned documents.

        ``full=True`` (the ``qmatch index compact`` behaviour) merges
        *everything* into one segment.  ``full=False`` applies the
        size-tiered policy: any tier (live-doc counts within one power
        of :attr:`tier_factor`) holding at least
        :attr:`compact_trigger` segments is folded, repeatedly, until
        no tier triggers -- the auto-trigger ``add_batch`` runs.
        Returns ``{"merged", "dropped", "segments"}``.
        """
        merged = dropped = 0
        if full:
            seg_ids = list(self._segments)
            if len(seg_ids) > 1 or self.tombstone_count:
                dropped += self._merge_segments(seg_ids)
                merged += len(seg_ids)
        else:
            while True:
                tiers: dict[int, list] = {}
                for seg_id, segment in self._segments.items():
                    live = segment.doc_count - len(
                        self._tombstones.get(seg_id, ())
                    )
                    tiers.setdefault(self._tier_of(live), []).append(seg_id)
                candidates = [
                    seg_ids for _, seg_ids in sorted(tiers.items())
                    if len(seg_ids) >= self.compact_trigger
                ]
                if not candidates:
                    break
                group = candidates[0]
                dropped += self._merge_segments(group)
                merged += len(group)
        if merged or dropped:
            # No-op auto-compact probes (every add_batch) stay silent;
            # actual merges are operationally interesting.
            self.log.event(
                "segments.compact", full=full, merged=merged,
                dropped=dropped, segments=self.segment_count,
            )
        return {
            "merged": merged,
            "dropped": dropped,
            "segments": self.segment_count,
        }

    # ------------------------------------------------------------------
    # Merged global statistics (the parity core)
    # ------------------------------------------------------------------

    def _invalidate(self):
        self._stats = None
        self._norms = {}
        self._doc_loc = None

    def _dead_ordinals(self, seg_id: str, segment: Segment) -> frozenset:
        dead = self._tombstones.get(seg_id)
        if not dead:
            return frozenset()
        return frozenset(
            ordinal for ordinal, doc_id in enumerate(segment.doc_ids)
            if doc_id in dead
        )

    def _ensure_stats(self) -> dict:
        """Load every segment (first search) and merge document
        frequencies, lengths and counts across them.

        ``df``/``n`` merged this way are exactly what a monolithic
        index over the same live documents would hold, so
        :meth:`_idf` reproduces its IDF floats bit-for-bit.
        """
        if self._stats is not None:
            return self._stats
        n = 0
        total_length = 0
        df: dict[str, int] = {}
        dead_by_seg: dict[str, frozenset] = {}
        for seg_id, segment in self._segments.items():
            segment.load(self._hasher)
            dead = self._dead_ordinals(seg_id, segment)
            dead_by_seg[seg_id] = dead
            n += segment.doc_count - len(dead)
            for ordinal in range(segment.doc_count):
                if ordinal not in dead:
                    total_length += segment.length_of(ordinal)
            for token, plist in segment.postings.items():
                if dead:
                    count = sum(
                        1 for ordinal, _ in plist if ordinal not in dead
                    )
                else:
                    count = len(plist)
                if count:
                    df[token] = df.get(token, 0) + count
        self._stats = {
            "n": n,
            "df": df,
            "total_length": total_length,
            "dead": dead_by_seg,
        }
        return self._stats

    def _idf(self, token: str, stats: dict) -> float:
        # Bit-identical to InvertedIndex.idf over the merged df.
        df = stats["df"].get(token, 0)
        return math.log((1 + stats["n"]) / (1 + df)) + 1.0

    def _locate(self, doc_id: str) -> Optional[tuple]:
        """The (segment, ordinal) of one live document."""
        if self._doc_loc is None:
            stats = self._ensure_stats()
            loc = {}
            for seg_id, segment in self._segments.items():
                dead = stats["dead"][seg_id]
                for ordinal, did in enumerate(segment.doc_ids):
                    if ordinal not in dead:
                        loc[did] = (segment, ordinal)
            self._doc_loc = loc
        return self._doc_loc.get(doc_id)

    def _norm(self, doc_id: str, stats: dict) -> float:
        """Document norm with merged IDF, in stored token order --
        bit-identical to InvertedIndex._document_norm."""
        norm = self._norms.get(doc_id)
        if norm is not None:
            return norm
        located = self._locate(doc_id)
        if located is None:
            return 0.0
        segment, ordinal = located
        items = segment.items_of(ordinal)
        if not items:
            return 0.0
        norm = math.sqrt(sum(
            ((1.0 + math.log(tf)) * self._idf(token, stats)) ** 2
            for token, tf in items
        ))
        self._norms[doc_id] = norm
        return norm

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------

    def _fanout(self, tasks: list) -> list:
        """Run per-segment thunks, in parallel past a size threshold."""
        if len(tasks) <= 1:
            return [task() for task in tasks]
        if self._executor is None:
            workers = self.fanout_workers or min(
                8, len(self._segments), (os.cpu_count() or 2)
            )
            if workers <= 1:
                return [task() for task in tasks]
            self._executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="qmatch-seg"
            )
        return [
            future.result()
            for future in [self._executor.submit(task) for task in tasks]
        ]

    def _query_weights(self, query_tokens, stats: dict) -> tuple:
        """Cosine query weights in query order plus the norm² --
        mirroring InvertedIndex.cosine_scores' query side exactly."""
        weights = []
        query_norm_sq = 0.0
        for token, qtf in query_tokens.items():
            if qtf <= 0:
                continue
            idf = self._idf(token, stats)
            q_weight = (1.0 + math.log(qtf)) * idf
            query_norm_sq += q_weight ** 2
            weights.append((token, q_weight, idf))
        return weights, query_norm_sq

    def _cosine_partial(self, seg_id: str, segment: Segment,
                        weights: list, stats: dict) -> tuple:
        """One segment's cosine dot products (per-doc token order =
        query order, as in the monolithic accumulator).  Returns
        ``(accumulator, postings_walked)`` -- partials never touch
        shared telemetry, so they are safe under threaded fan-out."""
        dead = stats["dead"][seg_id]
        acc: dict[str, float] = {}
        walked = 0
        postings = segment.postings
        doc_ids = segment.doc_ids
        for token, q_weight, idf in weights:
            plist = postings.get(token)
            if not plist:
                continue
            walked += len(plist)
            for ordinal, tf in plist:
                if ordinal in dead:
                    continue
                doc_id = doc_ids[ordinal]
                acc[doc_id] = (
                    acc.get(doc_id, 0.0)
                    + q_weight * ((1.0 + math.log(tf)) * idf)
                )
        return acc, walked

    def _bm25_partial(self, seg_id: str, segment: Segment,
                      query_tokens, stats: dict) -> tuple:
        """One segment's raw BM25 sums (normalization happens after the
        merge, over the global best).  Returns ``(accumulator,
        postings_walked)``."""
        from repro.corpus.indexes import BM25_B, BM25_K1

        dead = stats["dead"][seg_id]
        n = stats["n"]
        avgdl = stats["total_length"] / n if n else 0.0
        acc: dict[str, float] = {}
        walked = 0
        postings = segment.postings
        doc_ids = segment.doc_ids
        for token, qtf in query_tokens.items():
            if qtf <= 0:
                continue
            df = stats["df"].get(token, 0)
            if not df:
                continue
            plist = postings.get(token)
            if not plist:
                continue
            idf = max(
                math.log(1.0 + (n - df + 0.5) / (df + 0.5)), 1e-6
            )
            walked += len(plist)
            for ordinal, tf in plist:
                if ordinal in dead:
                    continue
                dl = segment.length_of(ordinal)
                norm = (
                    1.0 - BM25_B + BM25_B * (dl / avgdl)
                    if avgdl > 0.0 else 1.0
                )
                doc_id = doc_ids[ordinal]
                acc[doc_id] = (
                    acc.get(doc_id, 0.0)
                    + qtf * idf * (tf * (BM25_K1 + 1.0))
                    / (tf + BM25_K1 * norm)
                )
        return acc, walked

    def _admit(self, query_tokens, stats: dict, extra=None) -> tuple:
        """Budget-mode admission: LSH candidates plus documents from
        the rarest query tokens' postings, until the budget fills.

        Tokens are consumed whole (ascending merged df, then token
        order) so admission is deterministic; the admitted set is then
        scored exactly, so a budgeted score equals the full-scan score
        for every admitted document.  Returns ``(admitted,
        postings_walked)``.
        """
        budget = self.max_candidates
        admitted = set(extra or ())
        walked = 0
        by_rarity = sorted(
            (
                (stats["df"].get(token, 0), token)
                for token, qtf in query_tokens.items()
                if qtf > 0 and stats["df"].get(token, 0)
            ),
        )
        for _, token in by_rarity:
            if len(admitted) >= budget:
                break
            for seg_id, segment in self._segments.items():
                plist = segment.postings.get(token)
                if not plist:
                    continue
                dead = stats["dead"][seg_id]
                walked += len(plist)
                doc_ids = segment.doc_ids
                for ordinal, _ in plist:
                    if ordinal not in dead:
                        admitted.add(doc_ids[ordinal])
        return admitted, walked

    def _score_admitted(self, admitted: set, query_tokens, scorer: str,
                        stats: dict) -> dict:
        """Exact per-document scores for an admitted set, computed from
        the stored document vectors (never the posting lists)."""
        from repro.corpus.indexes import BM25_B, BM25_K1

        if scorer == "cosine":
            weights, query_norm_sq = self._query_weights(query_tokens, stats)
            if query_norm_sq <= 0.0:
                return {}
            query_norm = math.sqrt(query_norm_sq)
            scores = {}
            for doc_id in admitted:
                located = self._locate(doc_id)
                if located is None:
                    continue
                segment, ordinal = located
                doc_map = segment.map_of(ordinal)
                dot = 0.0
                for token, q_weight, idf in weights:
                    tf = doc_map.get(token)
                    if tf:
                        dot += q_weight * ((1.0 + math.log(tf)) * idf)
                if dot:
                    doc_norm = self._norm(doc_id, stats)
                    if doc_norm > 0.0:
                        scores[doc_id] = dot / (query_norm * doc_norm)
            return scores
        n = stats["n"]
        avgdl = stats["total_length"] / n if n else 0.0
        raw = {}
        for doc_id in admitted:
            located = self._locate(doc_id)
            if located is None:
                continue
            segment, ordinal = located
            doc_map = segment.map_of(ordinal)
            dl = segment.length_of(ordinal)
            norm = (
                1.0 - BM25_B + BM25_B * (dl / avgdl) if avgdl > 0.0 else 1.0
            )
            total = 0.0
            for token, qtf in query_tokens.items():
                if qtf <= 0:
                    continue
                df = stats["df"].get(token, 0)
                tf = doc_map.get(token)
                if not df or not tf:
                    continue
                idf = max(
                    math.log(1.0 + (n - df + 0.5) / (df + 0.5)), 1e-6
                )
                total += (
                    qtf * idf * (tf * (BM25_K1 + 1.0))
                    / (tf + BM25_K1 * norm)
                )
            if total:
                raw[doc_id] = total
        if not raw:
            return {}
        best = max(raw.values())
        if best <= 0.0:
            return {}
        return {doc_id: value / best for doc_id, value in raw.items()}

    def _lexical_scores(self, query_tokens, scorer: str = "cosine",
                        segments: Optional[list] = None,
                        admit_extra=None, normalize: bool = True) -> dict:
        """Lexical scores across segments with merged-IDF parity.

        ``segments`` restricts the scan (the sharded searcher's lane);
        global statistics always cover every segment, so a sharded
        score equals the unsharded score for the same document.
        ``normalize=False`` returns *raw* BM25 sums (cosine is per-doc
        normalized either way) -- the sharded merge divides by the
        global best afterwards, since a shard-local max would skew it.
        """
        from repro.corpus.indexes import LEXICAL_SCORERS

        if scorer not in LEXICAL_SCORERS:
            raise SegmentError(
                f"unknown scorer {scorer!r}: expected one of "
                f"{', '.join(LEXICAL_SCORERS)}"
            )
        stats = self._ensure_stats()
        scan = {
            "docs_scored": 0, "postings_walked": 0,
            "live_docs": stats["n"], "budget": self.max_candidates,
        }
        self.last_scan = scan
        if stats["n"] == 0:
            return {}
        if self.max_candidates is not None:
            admitted, walked = self._admit(
                query_tokens, stats, extra=admit_extra
            )
            scores = self._score_admitted(
                admitted, query_tokens, scorer, stats
            )
            scan["docs_scored"] = len(admitted)
            scan["postings_walked"] = walked
            return scores
        chosen = (
            list(self._segments.items()) if segments is None
            else [(segment.seg_id, segment) for segment in segments]
        )
        if scorer == "cosine":
            weights, query_norm_sq = self._query_weights(query_tokens, stats)
            partials = self._fanout([
                (lambda s=seg_id, seg=segment:
                 self._cosine_partial(s, seg, weights, stats))
                for seg_id, segment in chosen
            ])
            accumulator: dict[str, float] = {}
            for partial, walked in partials:
                accumulator.update(partial)
                scan["postings_walked"] += walked
            scan["docs_scored"] = len(accumulator)
            if not accumulator or query_norm_sq <= 0.0:
                return {}
            query_norm = math.sqrt(query_norm_sq)
            scores = {}
            for doc_id, dot in accumulator.items():
                doc_norm = self._norm(doc_id, stats)
                if doc_norm > 0.0:
                    scores[doc_id] = dot / (query_norm * doc_norm)
            return scores
        partials = self._fanout([
            (lambda s=seg_id, seg=segment:
             self._bm25_partial(s, seg, query_tokens, stats))
            for seg_id, segment in chosen
        ])
        accumulator = {}
        for partial, walked in partials:
            accumulator.update(partial)
            scan["postings_walked"] += walked
        scan["docs_scored"] = len(accumulator)
        if not accumulator:
            return {}
        if not normalize:
            return accumulator
        best = max(accumulator.values())
        if best <= 0.0:
            return {}
        return {
            doc_id: score / best for doc_id, score in accumulator.items()
        }

    def _structural_candidates(self, signature: tuple,
                               segments: Optional[list] = None) -> set:
        """Doc ids sharing at least one LSH band, across segments."""
        stats = self._ensure_stats()
        chosen = (
            list(self._segments.items()) if segments is None
            else [(segment.seg_id, segment) for segment in segments]
        )
        keys = list(self._hasher.band_keys(signature))
        found: set = set()
        for seg_id, segment in chosen:
            dead = stats["dead"][seg_id]
            doc_ids = segment.doc_ids
            for key in keys:
                for ordinal in segment.buckets.get(key, ()):
                    if ordinal not in dead:
                        found.add(doc_ids[ordinal])
        return found

    def _estimate(self, signature: tuple, doc_id: str) -> float:
        """Estimated Jaccard against one stored document (as
        MinHashIndex.estimate)."""
        located = self._locate(doc_id)
        if located is None:
            return 0.0
        segment, ordinal = located
        stored = segment.signature_of(ordinal)
        agree = sum(1 for a, b in zip(signature, stored) if a == b)
        return agree / self.config.num_perm

    def retrieve_scores(self, query_tokens, signature: tuple,
                        scorer: str = "cosine",
                        segments: Optional[list] = None,
                        normalize: bool = True) -> tuple:
        """One-call stage-1 retrieval: ``(lexical_scores, structural_
        candidates)``.

        :class:`~repro.corpus.search.CorpusSearcher` prefers this over
        the two facade calls when present, which lets budget mode admit
        the LSH candidates into the exactly-scored set.
        """
        structural = self._structural_candidates(signature,
                                                 segments=segments)
        lexical = self._lexical_scores(
            query_tokens, scorer=scorer, segments=segments,
            admit_extra=structural if self.max_candidates is not None
            else None,
            normalize=normalize,
        )
        return lexical, structural

    def __repr__(self):
        return (
            f"<SegmentedCorpusIndex root={str(self.root)!r} "
            f"segments={self.segment_count} docs={self.document_count} "
            f"tombstones={self.tombstone_count}>"
        )
