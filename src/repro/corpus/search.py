"""Two-stage top-k schema search: index retrieval + QMatch rerank.

Stage 1 (**retrieve**) asks the :class:`~repro.corpus.indexes.CorpusIndex`
for everything that shares evidence with the query -- token cosine
scores from the inverted index, Jaccard estimates from the MinHash LSH
buckets -- blends them, and keeps a candidate shortlist.  Cost is
proportional to the matching posting lists, not the corpus.

Stage 2 (**rerank**) runs the full hybrid QMatch engine on query ×
shortlist only, through the same :class:`~repro.service.runner.BatchRunner`
the batch service uses (so reranks parallelize over worker processes
and hit the content-addressed result store when one is attached), and
orders hits by tree QoM.

The point: against an ``N``-schema corpus a search examines
``len(shortlist)`` expensive pairs instead of ``N`` -- the
``search.pruned`` counter and the ``search:retrieve`` /
``search:rerank`` stage timings in the result's
:class:`~repro.engine.stats.EngineStats` quantify exactly what was
skipped.  When the corpus is small (fewer entries than the candidate
budget) nothing is pruned and the ranking provably equals brute force.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from repro.corpus.corpus import SchemaCorpus
from repro.corpus.indexes import CorpusIndex
from repro.engine.stats import EngineStats
from repro.obs.log import NULL_LOGGER
from repro.obs.spans import current_tracer
from repro.service.jobs import MatchJobSpec
from repro.service.runner import BatchRunner
from repro.service.store import ResultStore, content_hash

#: Default number of hits a search returns.
DEFAULT_K = 10

#: Candidate-budget defaults: rerank at most max(k * OVERSAMPLE,
#: MIN_CANDIDATES) schemas.  Generous on small corpora (everything is
#: reranked -- exact brute-force ranking), a hard prune on large ones.
OVERSAMPLE = 3
MIN_CANDIDATES = 20


@dataclass
class SearchHit:
    """One ranked corpus schema."""

    hash: str
    name: str
    #: Blended stage-1 score (lexical cosine + structural Jaccard).
    retrieval_score: float
    lexical_score: float
    structural_score: float
    #: Full QMatch tree QoM; ``None`` when the hit was not reranked.
    qom: Optional[float] = None
    correspondences: Optional[int] = None
    reranked: bool = False
    error: Optional[str] = None
    #: Root-pair axis breakdown of the rerank (label/properties/level/
    #: children[/instance] floats); ``None`` when not reranked or the
    #: algorithm cannot explain itself.
    axes: Optional[dict] = None
    #: The full rerank result payload -- kept so constraint filtering can
    #: evaluate against complete evidence.  Deliberately not serialized.
    payload: Optional[dict] = None

    @property
    def score(self) -> float:
        """The hit's ranking score: QoM when reranked, else retrieval."""
        return self.qom if self.qom is not None else self.retrieval_score

    def as_dict(self) -> dict:
        return {
            "hash": self.hash,
            "name": self.name,
            "score": self.score,
            "retrieval_score": self.retrieval_score,
            "lexical_score": self.lexical_score,
            "structural_score": self.structural_score,
            "qom": self.qom,
            "axes": self.axes,
            "correspondences": self.correspondences,
            "reranked": self.reranked,
            "error": self.error,
        }


@dataclass
class SearchResult:
    """The outcome of one top-k search."""

    query_name: str
    k: int
    hits: list = field(default_factory=list)
    corpus_size: int = 0
    #: Docs with any index evidence (stage-1 scoring work).
    candidates: int = 0
    #: Candidates dropped before the expensive stage.
    pruned: int = 0
    #: Full QMatch runs actually performed.
    examined: int = 0
    #: Constraint-filtering counters (``{"evaluated", "admitted",
    #: "filtered"}``) when a constraint was applied, else ``None``.
    constraints: Optional[dict] = None
    stats: EngineStats = field(default_factory=EngineStats)

    def as_dict(self, include_stats: bool = True) -> dict:
        payload = {
            "query": self.query_name,
            "k": self.k,
            "corpus_size": self.corpus_size,
            "candidates": self.candidates,
            "pruned": self.pruned,
            "examined": self.examined,
            "hits": [hit.as_dict() for hit in self.hits],
        }
        if self.constraints is not None:
            payload["constraints"] = self.constraints
        if include_stats:
            payload["stats"] = self.stats.as_dict()
        return payload

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def render(self) -> str:
        """Human-readable ranking table plus the pruning summary."""
        from repro.evaluation.harness import render_table

        rows = []
        for rank, hit in enumerate(self.hits, start=1):
            rows.append((
                rank,
                hit.name,
                hit.hash[:12],
                f"{hit.qom:.4f}" if hit.qom is not None else "-",
                f"{hit.retrieval_score:.4f}",
                hit.correspondences if hit.correspondences is not None else "-",
                hit.error or "",
            ))
        table = render_table(
            ["rank", "schema", "hash", "QoM", "retrieval", "found", "note"],
            rows,
        )
        summary = (
            f"query {self.query_name!r}: {len(self.hits)} of top-{self.k} "
            f"over {self.corpus_size} schemas; {self.candidates} candidates, "
            f"{self.pruned} pruned, {self.examined} reranked with QMatch"
        )
        if self.constraints is not None:
            summary += (
                f"; constraints: {self.constraints['admitted']} admitted, "
                f"{self.constraints['filtered']} filtered"
            )
        return f"{table}\n{summary}"


class CorpusSearcher:
    """Retrieve-then-rerank top-k search over a :class:`SchemaCorpus`."""

    def __init__(self, corpus: SchemaCorpus, index: CorpusIndex,
                 algorithm: str = "qmatch",
                 threshold: float = 0.5,
                 weights=None,
                 lexical_weight: float = 0.7,
                 scorer: str = "cosine",
                 workers: int = 1,
                 store: Optional[ResultStore] = None,
                 log=NULL_LOGGER):
        """``lexical_weight`` blends the stage-1 signals:
        ``score = lw * lexical + (1 - lw) * jaccard``, where the
        lexical side is ``scorer`` -- ``cosine`` (default) or ``bm25``
        (see :data:`~repro.corpus.indexes.LEXICAL_SCORERS`; both live
        in [0, 1]).  ``workers`` > 1 fans the rerank over that many
        processes; ``store`` makes reranks content-addressed-cacheable
        across searches.  ``log`` is an
        :class:`~repro.obs.log.EventLogger` that receives
        ``search.retrieve`` / ``search.rerank`` stage events (disabled
        by default).
        """
        from repro.corpus.indexes import LEXICAL_SCORERS

        if not 0.0 <= lexical_weight <= 1.0:
            raise ValueError(
                f"lexical_weight must be in [0, 1], got {lexical_weight}"
            )
        if scorer not in LEXICAL_SCORERS:
            raise ValueError(
                f"unknown scorer {scorer!r}: expected one of "
                f"{', '.join(LEXICAL_SCORERS)}"
            )
        self.corpus = corpus
        self.index = index
        self.algorithm = algorithm
        self.threshold = threshold
        self.weights = weights
        self.lexical_weight = lexical_weight
        self.scorer = scorer
        self.workers = workers
        self.store = store
        self.log = log

    # ------------------------------------------------------------------
    # Stage 1: index retrieval
    # ------------------------------------------------------------------

    def _stage1(self, tokens, signature) -> tuple:
        """Raw stage-1 signals: ``(lexical_scores, structural_candidates)``.

        The extension seam the sharded searcher overrides to fan the
        scan.  Indexes exposing a combined ``retrieve_scores`` (the
        segmented index, which shares admission state between the two
        signals) are preferred over the two facade calls.
        """
        combined = getattr(self.index, "retrieve_scores", None)
        if combined is not None:
            return combined(tokens, signature, scorer=self.scorer)
        return (
            self.index.inverted.scores(tokens, scorer=self.scorer),
            self.index.minhash.candidates(signature),
        )

    def retrieve(self, query_tree, stats: Optional[EngineStats] = None,
                 ) -> list[SearchHit]:
        """Every candidate with index evidence, best-first.

        Union scoring: a schema appears when the inverted index *or*
        the LSH buckets surface it; the blended score rewards agreement
        between the two signals.
        """
        stats = stats if stats is not None else EngineStats()
        with stats.stage("search:retrieve"):
            tokens = self.index.query_tokens(query_tree)
            signature = self.index.query_signature(query_tree)
            lexical, structural_candidates = self._stage1(tokens, signature)
            candidates = set(lexical) | structural_candidates
            hits = []
            for doc_id in candidates:
                lex = lexical.get(doc_id, 0.0)
                struct = self.index.minhash.estimate(signature, doc_id)
                try:
                    name = self.corpus.entry(doc_id).name
                except Exception:
                    name = doc_id[:12]
                hits.append(SearchHit(
                    hash=doc_id,
                    name=name,
                    retrieval_score=(
                        self.lexical_weight * lex
                        + (1.0 - self.lexical_weight) * struct
                    ),
                    lexical_score=lex,
                    structural_score=struct,
                ))
            hits.sort(key=lambda hit: (-hit.retrieval_score, hit.name,
                                       hit.hash))
        return hits

    # ------------------------------------------------------------------
    # Stage 2: QMatch rerank
    # ------------------------------------------------------------------

    def _rerank(self, query_xsd: str, query_hash: str, query_name: str,
                shortlist: list, stats: EngineStats,
                query_profiles: Optional[dict] = None):
        def entry_profile(doc_id):
            try:
                return self.corpus.entry(doc_id).profile or None
            except Exception:
                return None

        specs = [
            MatchJobSpec(
                source_xsd=query_xsd,
                target_xsd=self.corpus.text(hit.hash),
                algorithm=self.algorithm,
                threshold=self.threshold,
                weights=self.weights,
                label=f"{query_name}~{hit.name}",
                source_name=query_name,
                target_name=hit.name,
                source_hash=query_hash,
                target_hash=hit.hash,
                source_profiles=query_profiles,
                target_profiles=entry_profile(hit.hash),
            )
            for hit in shortlist
        ]
        runner = BatchRunner(
            workers=self.workers,
            store=self.store,
            retries=0,
            inline=self.workers == 1,
            log=self.log.child(stage="rerank"),
        )
        with stats.stage("search:rerank"):
            report = runner.run(specs)
        stats.merge(report.stats)
        for hit, record in zip(shortlist, report.records):
            hit.reranked = True
            if record.result is not None:
                hit.payload = record.result
                hit.qom = record.result.get("tree_qom")
                hit.axes = record.result.get("root_axes")
                hit.correspondences = len(
                    record.result.get("correspondences", ())
                )
            else:
                hit.error = (record.error or {}).get(
                    "message", "rerank failed"
                )

    # ------------------------------------------------------------------
    # The search entry point
    # ------------------------------------------------------------------

    def search(self, query_tree, k: int = DEFAULT_K,
               candidates: Optional[int] = None,
               rerank: bool = True,
               query_profiles: Optional[dict] = None,
               constraint=None) -> SearchResult:
        """Top-``k`` corpus schemas for ``query_tree``.

        ``candidates`` caps the expensive stage (default
        ``max(OVERSAMPLE * k, MIN_CANDIDATES)``); ``rerank=False``
        returns the pure index ranking (no QMatch runs at all).
        ``query_profiles`` are instance-evidence profiles for the query
        schema (``{node_path: profile_dict}``), forwarded -- together
        with each corpus entry's stored profiles -- into the rerank jobs
        so a nonzero ``instance`` weight can use them.  ``constraint``
        (a parsed :class:`repro.constraints.Constraint`) filters the
        reranked shortlist *before* the top-``k`` cut: only hits whose
        full match evidence satisfies it are admitted, so the result may
        legitimately hold fewer than ``k`` hits.
        """
        from repro.xsd.serializer import to_xsd

        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if candidates is not None and candidates < 1:
            raise ValueError(f"candidates must be >= 1, got {candidates}")
        if constraint is not None and not rerank:
            raise ValueError(
                "constraint filtering needs rerank evidence; "
                "drop --no-rerank or the constraint"
            )
        stats = EngineStats()
        budget = (
            candidates if candidates is not None
            else max(OVERSAMPLE * k, MIN_CANDIDATES)
        )
        tracer = current_tracer()
        retrieve_span = tracer.start("corpus.retrieve", {
            "corpus_size": len(self.corpus),
        }) if tracer.enabled else None
        ranked = self.retrieve(query_tree, stats=stats)
        if retrieve_span is not None:
            # ``last_scan`` is the segmented index's per-call scan
            # telemetry (approximate under sharded fan-out, where each
            # shard span below carries the authoritative numbers).
            scan = getattr(self.index, "last_scan", None) or {}
            tracer.finish(retrieve_span, attributes={
                "candidates": len(ranked),
                **{
                    key: value for key, value in scan.items()
                    if value is not None
                },
            })
        shortlist = ranked[:budget]
        pruned = len(ranked) - len(shortlist)
        if len(shortlist) < budget:
            # The index surfaced fewer candidates than we can afford to
            # rerank: spend the leftover budget on zero-evidence entries
            # (deterministic order).  On corpora smaller than the budget
            # this makes the rerank exhaustive -- a recall floor that
            # guarantees parity with brute force -- while large corpora
            # still prune everything past the budget.
            seen = {hit.hash for hit in shortlist}
            for entry in self.corpus.entries():
                if len(shortlist) >= budget:
                    break
                if entry.hash in seen:
                    continue
                shortlist.append(SearchHit(
                    hash=entry.hash, name=entry.name,
                    retrieval_score=0.0, lexical_score=0.0,
                    structural_score=0.0,
                ))
        stats.count("search.corpus-size", len(self.corpus))
        stats.count("search.candidates", len(ranked))
        stats.count("search.pruned", pruned)
        retrieve_stage = stats.stages.get("search:retrieve")
        self.log.event(
            "search.retrieve",
            query=query_tree.name,
            corpus_size=len(self.corpus),
            candidates=len(ranked),
            shortlist=len(shortlist),
            pruned=pruned,
            seconds=(
                round(retrieve_stage.seconds, 6)
                if retrieve_stage is not None else None
            ),
        )
        result = SearchResult(
            query_name=query_tree.name,
            k=k,
            corpus_size=len(self.corpus),
            candidates=len(ranked),
            pruned=pruned,
            stats=stats,
        )
        if rerank and shortlist:
            query_xsd = to_xsd(query_tree)
            rerank_span = tracer.start("corpus.rerank", {
                "examined": len(shortlist),
            }) if tracer.enabled else None
            self._rerank(
                query_xsd, content_hash(query_xsd), query_tree.name,
                shortlist, stats, query_profiles=query_profiles,
            )
            if rerank_span is not None:
                tracer.finish(rerank_span, attributes={
                    "errors": sum(1 for hit in shortlist if hit.error),
                })
            result.examined = len(shortlist)
            stats.count("search.reranked", len(shortlist))
            rerank_stage = stats.stages.get("search:rerank")
            self.log.event(
                "search.rerank",
                query=query_tree.name,
                examined=len(shortlist),
                errors=sum(1 for hit in shortlist if hit.error),
                seconds=(
                    round(rerank_stage.seconds, 6)
                    if rerank_stage is not None else None
                ),
            )
            shortlist.sort(
                key=lambda hit: (-(hit.qom if hit.qom is not None else -1.0),
                                 -hit.retrieval_score, hit.name, hit.hash)
            )
            if constraint is not None:
                shortlist = self._constrain(
                    query_tree, shortlist, constraint, result, stats
                )
        result.hits = shortlist[:k]
        return result

    def _constrain(self, query_tree, shortlist: list, constraint,
                   result: SearchResult, stats: EngineStats) -> list:
        """Admit only reranked hits whose evidence satisfies ``constraint``.

        Hits whose rerank errored carry no evidence and are filtered --
        a gate must not admit what it cannot verify.
        """
        from repro.constraints import MatchEvidence, evaluate_constraint
        from repro.xsd.parser import parse_xsd

        tracer = current_tracer()
        constrain_span = tracer.start("constraints.filter", {
            "evaluated": len(shortlist),
        }) if tracer.enabled else None
        admitted = []
        filtered = 0
        with stats.stage("search:constrain"):
            for hit in shortlist:
                if hit.payload is None:
                    filtered += 1
                    continue
                target_tree = parse_xsd(
                    self.corpus.text(hit.hash), name=hit.name
                )
                evidence = MatchEvidence.from_payload(
                    hit.payload, source_tree=query_tree,
                    target_tree=target_tree,
                )
                if evaluate_constraint(constraint, evidence).passed:
                    admitted.append(hit)
                else:
                    filtered += 1
        if constrain_span is not None:
            tracer.finish(constrain_span, attributes={
                "admitted": len(admitted), "filtered": filtered,
            })
        stats.count("search.constraint_admitted", len(admitted))
        stats.count("search.constraint_filtered", filtered)
        result.constraints = {
            "evaluated": len(shortlist),
            "admitted": len(admitted),
            "filtered": filtered,
        }
        self.log.event(
            "search.constrain", query=query_tree.name,
            evaluated=len(shortlist), admitted=len(admitted),
            filtered=filtered,
        )
        return admitted
