"""Cupid's TreeMatch algorithm.

Cupid computes a weighted similarity for every node pair::

    wsim(s, t) = w_struct * ssim(s, t) + (1 - w_struct) * lsim(s, t)

- ``lsim`` is the linguistic similarity of the labels (we reuse the
  same Cupid-style linguistic matcher QMatch uses -- exactly how the
  QMatch paper set up its own comparison);
- ``ssim`` for leaves is data-type compatibility (the XSD type lattice);
- ``ssim`` for inner nodes is the fraction of *strongly linked* leaves
  in the two subtrees: a leaf is strongly linked when some leaf on the
  other side has ``wsim`` above ``th_accept``.

The characteristic Cupid twist is **leaf-similarity propagation**,
applied while walking the pair grid bottom-up: when an inner pair's
``wsim`` exceeds ``th_high``, the structural similarity of each leaf
pair underneath is multiplied by ``c_inc`` (capped at 1); when it falls
below ``th_low``, by ``c_dec``.  This lets agreement between containers
pull their contents together -- and makes the result order-dependent in
exactly the way the original is.

Mapping elements are then selected from the final wsim matrix by the
library's shared one-to-one selection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.linguistic.matcher import LinguisticMatcher
from repro.matching.base import Matcher
from repro.matching.result import ScoreMatrix
from repro.properties.types import type_similarity


@dataclass(frozen=True)
class CupidConfig:
    """Cupid's published knobs (defaults follow the VLDB'01 paper).

    ``w_struct`` balances structure against names; ``th_accept`` is the
    strong-link threshold; ``th_high`` / ``th_low`` trigger the
    leaf-similarity increase / decrease by the multiplicative factors
    ``c_inc`` / ``c_dec``.
    """

    w_struct: float = 0.5
    th_accept: float = 0.5
    th_high: float = 0.6
    th_low: float = 0.35
    c_inc: float = 1.2
    c_dec: float = 0.9

    def __post_init__(self):
        if not 0.0 <= self.w_struct <= 1.0:
            raise ValueError(f"w_struct must be in [0, 1], got {self.w_struct}")
        if not self.th_low <= self.th_high:
            raise ValueError(
                f"need th_low <= th_high, got {self.th_low} > {self.th_high}"
            )
        if self.c_inc < 1.0 or not 0.0 < self.c_dec <= 1.0:
            raise ValueError("need c_inc >= 1 and 0 < c_dec <= 1")


class CupidMatcher(Matcher):
    """Cupid's TreeMatch over schema trees."""

    name = "cupid"

    def __init__(self, config=None, linguistic=None):
        self.config = config or CupidConfig()
        self.linguistic = linguistic or LinguisticMatcher()

    def make_context(self, source, target, stats=None, cache_enabled=True,
                     tracer=None):
        from repro.engine.context import MatchContext

        return MatchContext(
            source, target, linguistic=self.linguistic,
            stats=stats, cache_enabled=cache_enabled, tracer=tracer,
        )

    def match_context(self, ctx) -> ScoreMatrix:
        config = self.config
        source, target = ctx.source, ctx.target
        s_nodes = ctx.source_postorder
        t_nodes = ctx.target_postorder

        # Mutable leaf-pair structural similarity, subject to propagation.
        leaf_ssim: dict[tuple[int, int], float] = {}
        for s_leaf in ctx.leaves(source.root):
            for t_leaf in ctx.leaves(target.root):
                leaf_ssim[(id(s_leaf), id(t_leaf))] = type_similarity(
                    s_leaf.type_name, t_leaf.type_name
                )

        def lsim(s_node, t_node):
            return ctx.label_score(s_node.name, t_node.name)

        def leaf_wsim(s_leaf, t_leaf):
            return (
                config.w_struct * leaf_ssim[(id(s_leaf), id(t_leaf))]
                + (1 - config.w_struct) * lsim(s_leaf, t_leaf)
            )

        matrix = ScoreMatrix(source, target)
        for s_node in s_nodes:
            s_leaves = ctx.leaves(s_node)
            for t_node in t_nodes:
                t_leaves = ctx.leaves(t_node)
                if s_node.is_leaf and t_node.is_leaf:
                    wsim = leaf_wsim(s_node, t_node)
                    matrix.set(s_node, t_node, min(1.0, wsim))
                    continue
                ssim = self._structural_similarity(
                    s_leaves, t_leaves, leaf_wsim
                )
                wsim = config.w_struct * ssim + (1 - config.w_struct) * lsim(
                    s_node, t_node
                )
                matrix.set(s_node, t_node, min(1.0, wsim))
                self._propagate(wsim, s_leaves, t_leaves, leaf_ssim)

        # Mapping generation reads post-propagation leaf similarities
        # (the inner-pair walk above has been mutating leaf_ssim), so
        # refresh every leaf pair's final wsim.
        for s_leaf in ctx.leaves(source.root):
            for t_leaf in ctx.leaves(target.root):
                matrix.set(s_leaf, t_leaf, min(1.0, leaf_wsim(s_leaf, t_leaf)))
        ctx.stats.count("cupid.pairs", len(matrix))
        return matrix

    # ------------------------------------------------------------------

    def _structural_similarity(self, s_leaves, t_leaves, leaf_wsim):
        """Fraction of leaves on both sides with a strong link across."""
        if not s_leaves or not t_leaves:
            return 0.0
        th_accept = self.config.th_accept
        linked_s = 0
        linked_t_ids = set()
        for s_leaf in s_leaves:
            strongly_linked = False
            for t_leaf in t_leaves:
                if leaf_wsim(s_leaf, t_leaf) > th_accept:
                    strongly_linked = True
                    linked_t_ids.add(id(t_leaf))
            if strongly_linked:
                linked_s += 1
        return (linked_s + len(linked_t_ids)) / (len(s_leaves) + len(t_leaves))

    def _propagate(self, wsim, s_leaves, t_leaves, leaf_ssim):
        """Cupid's leaf-similarity increase / decrease."""
        config = self.config
        if wsim > config.th_high:
            factor = config.c_inc
        elif wsim < config.th_low:
            factor = config.c_dec
        else:
            return
        for s_leaf in s_leaves:
            for t_leaf in t_leaves:
                key = (id(s_leaf), id(t_leaf))
                leaf_ssim[key] = min(1.0, leaf_ssim[key] * factor)
