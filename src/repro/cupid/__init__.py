"""Cupid (Madhavan, Bernstein, Rahm -- VLDB 2001), the paper's comparator.

The QMatch paper's Section 7 names its ongoing work as "evaluating the
quality of match and the performance of QMatch with other hybrid and
composite algorithms such as CUPID and COMA".  This package provides the
Cupid side of that comparison: a faithful implementation of Cupid's
TreeMatch -- linguistic similarity blended with a bottom-up structural
similarity over leaf sets, plus the characteristic leaf-similarity
propagation (boost the leaves under strongly matching internal nodes,
dampen those under weak ones).
"""

from repro.cupid.matcher import CupidConfig, CupidMatcher

__all__ = ["CupidConfig", "CupidMatcher"]
