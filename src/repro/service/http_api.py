"""The HTTP JSON API, independent of any transport.

One request pipeline serves both front-ends -- the threaded
:class:`~repro.service.server.MatchRequestHandler` (embedded/test use)
and the asyncio :class:`~repro.service.aserver.AsyncMatchServer`
(``qmatch serve``).  Each transport only reads bytes off its socket
and writes the returned :class:`ApiResponse` back; every route,
status code, error message, admission decision and metric sample is
produced here, which is what keeps the JSON API byte-identical across
transports.

Cross-cutting behaviour owned by this module:

- **route normalization** for metric labels (job ids collapse to
  ``{id}``, unknown paths share one bucket);
- **admission control**: job-submitting routes consult the service's
  bounded admission queue and answer ``429`` with a ``Retry-After``
  header when saturated, ``503`` while draining;
- **body handling**: empty/oversized/non-JSON bodies become the same
  400/413 records everywhere;
- **metrics**: every request lands in ``http_requests_total`` /
  ``http_request_seconds`` exactly once (the ``/metrics`` scrape
  records itself *before* rendering, so the first scrape already
  carries samples).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Optional
from urllib.parse import parse_qs

from repro.obs.log import new_run_id
from repro.obs.spans import (
    NULL_SPAN_TRACER,
    current_tracer,
    use_request_id,
    use_tracer,
)
from repro.service.jobs import JobState
from repro.service.validation import ValidationError

#: Client-supplied ``X-Request-Id`` values are trusted but bounded.
MAX_REQUEST_ID_CHARS = 128

#: Default page size of ``GET /jobs`` (override per request with
#: ``?limit=``; capped at MAX_JOBS_PAGE).
DEFAULT_JOBS_PAGE = 100
MAX_JOBS_PAGE = 1000


class ServiceSaturated(Exception):
    """Admission control rejected the request (queue full)."""

    def __init__(self, message: str, retry_after: int = 1):
        super().__init__(message)
        self.retry_after = retry_after


class ServiceDraining(Exception):
    """The service is shutting down and takes no new work."""


class PayloadTooLarge(ValueError):
    """The request body exceeds the service's size limit."""

    def __init__(self, length: int, limit: int):
        super().__init__(
            f"request body of {length} bytes exceeds the "
            f"{limit}-byte limit"
        )
        self.length = length
        self.limit = limit


@dataclass
class ApiResponse:
    """What a transport writes back: status, headers, body bytes."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: list = field(default_factory=list)
    #: Normalized route label (for transports that log per route).
    route: str = "(unknown)"
    close: bool = False


def json_response(status: int, payload: dict, *, route: str = "(unknown)",
                  headers: Optional[list] = None,
                  close: bool = False) -> ApiResponse:
    return ApiResponse(
        status=status,
        body=json.dumps(payload, indent=2).encode("utf-8"),
        content_type="application/json",
        headers=list(headers or ()),
        route=route,
        close=close,
    )


def route_label(parts: list) -> str:
    """Normalized route template for metric labels.

    Job ids collapse to ``{id}`` and unknown paths collapse to one
    bucket, so label cardinality stays bounded no matter what clients
    request.
    """
    if not parts:
        return "/"
    if parts[0] == "jobs" and len(parts) == 2:
        return "/jobs/{id}"
    if (parts[0] == "jobs" and len(parts) == 3
            and parts[2] in ("result", "trace")):
        return "/jobs/{id}/" + parts[2]
    if len(parts) == 1 and parts[0] in (
        "healthz", "stats", "metrics", "jobs", "match", "search", "slo",
    ):
        return "/" + parts[0]
    return "(unknown)"


def open_request(service, headers: Optional[dict] = None) -> tuple:
    """Per-request identity for a transport: ``(tracer, request_id)``.

    Takes the head-sampling decision (when the service has tracing
    configured) and resolves the request id: a client-supplied
    ``X-Request-Id`` header wins, else the id derives from the trace
    id so log lines, spans and the response header all correlate.
    """
    tracing = getattr(service, "tracing", None)
    if tracing is not None:
        tracer, trace_id = tracing.start_request()
    else:
        tracer, trace_id = NULL_SPAN_TRACER, ""
    client_id = ""
    if headers:
        client_id = str(
            headers.get("x-request-id")
            or headers.get("X-Request-Id") or ""
        ).strip()[:MAX_REQUEST_ID_CHARS]
    request_id = client_id or (trace_id[:16] if trace_id else new_run_id())
    return tracer, request_id


def finish_request(service, tracer) -> None:
    """Flush a sampled request's span tree to the store/exporter."""
    if not getattr(tracer, "enabled", False):
        return
    tracing = getattr(service, "tracing", None)
    if tracing is not None:
        tracing.complete(tracer)


def stamp_request_id(response: ApiResponse, request_id: str) -> None:
    """Attach the ``X-Request-Id`` header (every response carries one)."""
    if request_id:
        response.headers.append(("X-Request-Id", request_id))


def parse_body(raw: Optional[bytes]) -> dict:
    """The JSON body of a POST, with the canonical error records."""
    if not raw:
        raise ValidationError("request body is empty")
    try:
        return json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValidationError(
            f"request body is not valid JSON: {exc}"
        ) from None


def _int_param(params: dict, name: str, default: int,
               minimum: int = 0) -> int:
    values = params.get(name)
    if not values:
        return default
    try:
        value = int(values[-1])
    except ValueError:
        raise ValidationError(
            f"invalid {name} {values[-1]!r}: expected an integer"
        ) from None
    if value < minimum:
        raise ValidationError(
            f"invalid {name} {value}: must be >= {minimum}"
        )
    return value


def handle_api_request(service, method: str, path: str,
                       raw_body: Optional[bytes],
                       started: Optional[float] = None,
                       tracer=NULL_SPAN_TRACER,
                       request_id: Optional[str] = None,
                       request_headers: Optional[dict] = None,
                       ) -> ApiResponse:
    """Dispatch one request against ``service`` and record its metrics.

    ``raw_body`` is the request body for POSTs (``None`` for GETs);
    transports enforce the byte-size cap while *reading* (so an
    oversized body is never buffered) and call
    :func:`too_large_response` instead.

    ``tracer``/``request_id`` come from :func:`open_request` on the
    transport side; both are bound into request-scoped context here --
    deliberately *inside* the executor thread, because contextvars do
    not cross ``run_in_executor``.  Every response leaves with an
    ``X-Request-Id`` header (derived here when no transport supplied
    one, e.g. for embedded/direct callers).
    """
    started = started if started is not None else time.perf_counter()
    if request_id is None:
        client_id = ""
        if request_headers:
            client_id = str(
                request_headers.get("x-request-id") or ""
            ).strip()[:MAX_REQUEST_ID_CHARS]
        request_id = client_id or new_run_id()
    path, _, query = path.partition("?")
    parts = [part for part in path.split("/") if part]
    route = route_label(parts)
    params = parse_qs(query, keep_blank_values=True)
    with use_tracer(tracer), use_request_id(request_id):
        span = tracer.start("router", {"method": method}) \
            if tracer.enabled else None
        try:
            if method == "GET":
                response = _get(service, parts, route, params, started)
            elif method == "POST":
                response = _post(service, parts, route, raw_body)
            else:
                response = json_response(
                    405, {"error": f"method {method} not allowed"},
                    route=route,
                )
        except ValidationError as exc:
            response = json_response(400, {"error": str(exc)}, route=route)
        except ServiceDraining:
            response = json_response(
                503, {"error": "service is draining; no new work accepted"},
                route=route,
            )
        except ServiceSaturated as exc:
            response = json_response(
                429, {"error": str(exc), "retry_after": exc.retry_after},
                route=route,
                headers=[("Retry-After", str(exc.retry_after))],
            )
        except Exception as exc:  # noqa: BLE001 -- request boundary
            response = json_response(
                500, {"error": f"{type(exc).__name__}: {exc}"}, route=route,
            )
        if span is not None:
            tracer.finish(span, attributes={
                "route": response.route, "status": response.status,
            })
    stamp_request_id(response, request_id)
    if route != "/metrics":
        service.record_request(
            method, route, response.status, time.perf_counter() - started,
        )
    return response


def too_large_response(service, method: str, path: str, length: int,
                       started: float) -> ApiResponse:
    """The shared 413 record (transport detected the oversized body)."""
    path = path.partition("?")[0]
    route = route_label([part for part in path.split("/") if part])
    error = PayloadTooLarge(length, service.max_body_bytes)
    response = json_response(
        413, {"error": str(error)}, route=route, close=True,
    )
    service.record_request(
        method, route, 413, time.perf_counter() - started,
    )
    return response


# ----------------------------------------------------------------------
# GET routes
# ----------------------------------------------------------------------

def _get(service, parts: list, route: str, params: dict,
         started: float) -> ApiResponse:
    if parts == ["healthz"]:
        return json_response(200, {"status": "ok"}, route=route)
    if parts == ["stats"]:
        return json_response(200, service.stats_snapshot(), route=route)
    if parts == ["metrics"]:
        # Record the in-flight scrape *before* rendering, so the body
        # always carries at least one HTTP counter and one latency
        # histogram sample -- even on the very first request a scraper
        # makes.
        service.record_request(
            "GET", route, 200, time.perf_counter() - started,
        )
        return ApiResponse(
            status=200,
            body=service.metrics_text().encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
            route=route,
        )
    if parts == ["slo"]:
        snapshot = getattr(service, "slo_snapshot", None)
        if snapshot is None:
            return json_response(
                404, {"error": "this service tracks no SLOs"}, route=route,
            )
        return json_response(200, snapshot(), route=route)
    if parts == ["jobs"]:
        offset = _int_param(params, "offset", 0, minimum=0)
        limit = _int_param(params, "limit", DEFAULT_JOBS_PAGE, minimum=1)
        limit = min(limit, MAX_JOBS_PAGE)
        records, total = service.queue.page(offset=offset, limit=limit)
        return json_response(200, {
            "jobs": [record.snapshot() for record in records],
            "total": total,
            "offset": offset,
            "limit": limit,
        }, route=route)
    if len(parts) == 2 and parts[0] == "jobs":
        record = service.queue.get(parts[1])
        if record is None:
            return json_response(
                404, {"error": f"no job {parts[1]!r}"}, route=route,
            )
        return json_response(200, record.snapshot(), route=route)
    if len(parts) == 3 and parts[:1] == ["jobs"] and parts[2] == "result":
        record = service.queue.get(parts[1])
        if record is None:
            return json_response(
                404, {"error": f"no job {parts[1]!r}"}, route=route,
            )
        if record.state is not JobState.DONE:
            return json_response(409, {
                "error": f"job {record.job_id} is {record.state.value}",
                "job": record.snapshot(),
            }, route=route)
        return json_response(200, record.result, route=route)
    if len(parts) == 3 and parts[:1] == ["jobs"] and parts[2] == "trace":
        record = service.queue.get(parts[1])
        if record is None:
            return json_response(
                404, {"error": f"no job {parts[1]!r}"}, route=route,
            )
        trace = service.trace_for(parts[1])
        if trace is None:
            return json_response(404, {
                "error": (
                    f"job {record.job_id} has no trace (submit with "
                    '"trace": true; cache hits carry no trace)'
                ),
                "job": record.snapshot(),
            }, route=route)
        return json_response(200, trace, route=route)
    return json_response(
        404, {"error": f"no route for {'/' + '/'.join(parts)!r}"},
        route=route,
    )


# ----------------------------------------------------------------------
# POST routes
# ----------------------------------------------------------------------

def _post(service, parts: list, route: str,
          raw_body: Optional[bytes]) -> ApiResponse:
    if parts == ["jobs"]:
        with current_tracer().span("admission"):
            service.check_admission()
        body = parse_body(raw_body)
        spec = service.spec_from_request(body)
        record = service.submit(spec, service.constraint_from_request(body))
        return json_response(202, record.snapshot(), route=route)
    if parts == ["match"]:
        with current_tracer().span("admission"):
            service.check_admission()
        body = parse_body(raw_body)
        spec = service.spec_from_request(body)
        record = service.run_sync(spec, service.constraint_from_request(body))
        if record.state is JobState.DONE:
            return json_response(
                200, record.snapshot(include_result=True), route=route,
            )
        return json_response(500, record.snapshot(), route=route)
    if parts == ["search"]:
        with current_tracer().span("admission"):
            if service.draining:
                raise ServiceDraining()
        payload = service.search_from_request(parse_body(raw_body))
        return json_response(200, payload, route=route)
    return json_response(
        404, {"error": f"no route for {'/' + '/'.join(parts)!r}"},
        route=route,
    )
