"""Persistent pre-warmed worker pool: the interactive serving backend.

:class:`~repro.service.runner.BatchRunner` forks a fresh process per
job attempt -- perfect isolation, but every request pays process
creation, module imports, thesaurus load and schema parsing before any
matching happens.  Fine for batch; fatal for interactive latency.

:class:`WorkerPool` keeps ``workers`` long-lived child processes, each
**pre-warmed** before the pool reports ready:

- the default thesaurus is parsed once and stays resident;
- parsed schema trees are kept in a per-worker LRU keyed by content
  hash, so repeated requests over the same schemas skip XSD parsing
  entirely (matching never mutates trees -- all memoization lives in
  ``MatchContext`` -- which is what makes the cache safe);
- with a corpus configured, the :class:`~repro.corpus.search.CorpusSearcher`
  (corpus + inverted/MinHash indexes) loads once per worker and serves
  ``POST /search`` without ever re-reading the index from disk.

Jobs travel over a duplex pipe: the parent checks an idle worker out
of a queue, sends the :class:`~repro.service.jobs.MatchJobSpec`, and
waits for the reply envelope with the job's deadline.  A worker that
crashes (EOF on the pipe) or overruns its deadline is killed and
**respawned** -- the pool never shrinks -- and the failure surfaces as
the same structured error/timeout record :class:`BatchRunner`
produces, because both backends share
:class:`~repro.service.runner.JobExecutionCore`'s state machine.
Retry then naturally lands on a fresh (or different) worker.

Instrumentation: ``service_pool_workers{state=idle|busy}`` gauges,
``service_pool_queue_wait_seconds`` (time a job waited for a free
worker -- the serving backpressure signal), and
``service_pool_respawns_total``.
"""

from __future__ import annotations

import os
import queue as queue_module
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Optional

from repro.constraints.evidence import attach_result_axes
from repro.obs.log import NULL_LOGGER
from repro.obs.metrics import QUEUE_WAIT_BUCKETS, pool_depth_metrics
from repro.obs.spans import (
    SpanTracer,
    current_request_id,
    current_tracer,
    use_request_id,
    use_tracer,
)
from repro.service.jobs import JobQueue, MatchJobSpec
from repro.service.runner import (
    DEFAULT_TIMEOUT,
    BatchReport,
    JobExecutionCore,
    execute_job,
)
from repro.service.store import ResultStore

#: Seconds the pool waits for a worker to finish warming before giving
#: up on it.  Warm-up parses the thesaurus and (optionally) loads a
#: corpus index; generous but bounded.
DEFAULT_SPAWN_TIMEOUT = 60.0

#: Parsed schema trees kept resident per worker.
DEFAULT_TREE_CACHE = 128


class PoolError(RuntimeError):
    """The pool cannot execute requests (failed spawn, closed, ...)."""


class PoolWarmup:
    """Builds the resident state inside a freshly spawned worker.

    Picklable (plain attributes, module-level class) so it crosses the
    process boundary under any multiprocessing start method.  The
    returned state dict is what :func:`execute_job_resident` and the
    resident search path read.
    """

    def __init__(self, corpus_dir=None, cache_dir=None,
                 scorer: str = "cosine", tree_cache: int = DEFAULT_TREE_CACHE,
                 segmented: bool = False, shards=None):
        self.corpus_dir = str(corpus_dir) if corpus_dir is not None else None
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.scorer = scorer
        self.tree_cache = tree_cache
        self.segmented = segmented
        self.shards = shards

    def __call__(self) -> dict:
        from repro.linguistic.thesaurus import Thesaurus

        state = {
            "thesaurus": Thesaurus.default(),
            "trees": OrderedDict(),
            "tree_cache": self.tree_cache,
            "searcher": None,
        }
        if self.corpus_dir is not None:
            from repro.service.server import build_searcher

            state["searcher"] = build_searcher(
                self.corpus_dir, cache_dir=self.cache_dir,
                scorer=self.scorer, segmented=self.segmented,
                shards=self.shards,
            )
        return state


def _resident_tree(state: Optional[dict], xsd_text: str, content_hash: str,
                   name: Optional[str]):
    """Parse ``xsd_text`` through the worker's resident LRU tree cache."""
    from repro.xsd.parser import parse_xsd

    if state is None:
        return parse_xsd(xsd_text, name=name)
    trees: OrderedDict = state["trees"]
    key = (content_hash, name)
    tree = trees.get(key)
    if tree is None:
        tree = parse_xsd(xsd_text, name=name)
        trees[key] = tree
        if len(trees) > state.get("tree_cache", DEFAULT_TREE_CACHE):
            trees.popitem(last=False)
    else:
        trees.move_to_end(key)
    return tree


def execute_job_resident(spec: MatchJobSpec, state: Optional[dict]) -> dict:
    """Worker body with resident state: :func:`execute_job` semantics,
    byte-identical result payloads, but schema parsing is served from
    the per-worker tree cache when the pair was seen before."""
    from repro.engine.registry import DEFAULT_REGISTRY
    from repro.matching.io import result_to_payload
    from repro.obs.trace import TraceRecorder, trace_run_id

    started = time.perf_counter()
    source = _resident_tree(
        state, spec.source_xsd, spec.source_hash, spec.source_name or None
    )
    target = _resident_tree(
        state, spec.target_xsd, spec.target_hash, spec.target_name or None
    )
    if spec.source_profiles or spec.target_profiles:
        # Profiles are per-job evidence; the LRU trees are shared across
        # jobs keyed by schema content alone, so attach to copies --
        # mutating a resident tree would leak one job's data into the
        # next job's match.
        from repro.ingest.profile import attach_profiles

        if spec.source_profiles:
            source = source.copy()
            attach_profiles(source, spec.source_profiles)
        if spec.target_profiles:
            target = target.copy()
            attach_profiles(target, spec.target_profiles)
    matcher = DEFAULT_REGISTRY.create(spec.algorithm, **spec.matcher_kwargs())
    tracer = None
    if spec.trace:
        tracer = TraceRecorder(run_id=trace_run_id(
            spec.source_hash, spec.target_hash,
            matcher.fingerprint(spec.threshold, spec.strategy),
        ))
    context = matcher.make_context(source, target, tracer=tracer)
    result = matcher.match(
        source, target, threshold=spec.threshold, strategy=spec.strategy,
        context=context,
    )
    payload = result_to_payload(result)
    attach_result_axes(payload, result, matcher, source, target, context=context)
    payload["source_hash"] = spec.source_hash
    payload["target_hash"] = spec.target_hash
    stats = result.stats.as_dict() if result.stats is not None else {}
    envelope = {
        "result": payload,
        "stats": stats,
        "elapsed": time.perf_counter() - started,
    }
    if tracer is not None:
        envelope["trace"] = tracer.as_dict()
    return envelope


class _StatelessBody:
    """Adapts a ``(spec) -> envelope`` body to the pool's
    ``(spec, state)`` signature -- lets tests reuse the BatchRunner
    worker injection points unchanged."""

    def __init__(self, body=execute_job):
        self.body = body

    def __call__(self, spec, state):
        return self.body(spec)


def _search_resident(request: dict, state: Optional[dict]) -> dict:
    """In-worker ``POST /search``: the resident searcher answers."""
    searcher = (state or {}).get("searcher")
    if searcher is None:
        raise PoolError("worker has no resident corpus searcher")
    from repro.xsd.parser import parse_xsd

    constraint = None
    if request.get("constraints") is not None:
        from repro.constraints import parse_constraint

        # Re-parse inside the worker: Constraint objects are picklable,
        # but shipping the raw dict keeps the pipe protocol plain data.
        constraint = parse_constraint(request["constraints"])
    query = parse_xsd(request["query_xsd"])
    result = searcher.search(
        query,
        k=int(request.get("k", 10)),
        candidates=(
            int(request["candidates"])
            if request.get("candidates") is not None else None
        ),
        rerank=bool(request.get("rerank", True)),
        constraint=constraint,
    )
    return result.as_dict()


def _pool_worker_main(conn, warm, worker_body):
    """Child-process loop: warm once, then serve requests until EOF.

    Every reply is sent in one message; any exception in a request
    becomes a structured error reply instead of a worker death, so only
    genuine crashes (``os._exit``, segfaults, kills) cost a respawn.
    """
    try:
        state = warm() if warm is not None else None
    except BaseException as exc:  # noqa: BLE001 -- report the warm failure
        try:
            conn.send({"ready": False, "error": {
                "type": type(exc).__name__, "message": str(exc),
            }})
        finally:
            conn.close()
        return
    conn.send({
        "ready": True,
        "corpus": bool(state and state.get("searcher") is not None),
    })
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if message is None:
            break
        # Older 2-tuple messages stay valid; the optional third slot
        # carries the request-scoped span context and request id.
        kind, payload, extras = (
            message if len(message) == 3 else (*message, None)
        )
        tracer = None
        if extras and extras.get("span"):
            tracer = SpanTracer.from_context(extras["span"])
        with use_request_id((extras or {}).get("request_id", "")), \
                use_tracer(tracer if tracer is not None
                           else current_tracer()):
            span = None
            if tracer is not None:
                span = tracer.start(f"worker.{kind}", {"pid": os.getpid()})
            try:
                if kind == "job":
                    value = worker_body(payload, state)
                elif kind == "search":
                    value = _search_resident(payload, state)
                else:
                    raise PoolError(f"unknown pool request kind {kind!r}")
                reply = {"ok": True, "value": value}
                if tracer is not None:
                    tracer.finish(span)
            except BaseException as exc:  # noqa: BLE001 -- boundary
                reply = {
                    "ok": False,
                    "error": {
                        "type": type(exc).__name__,
                        "message": str(exc),
                    },
                }
                if tracer is not None:
                    tracer.finish(span, status="ERROR", attributes={
                        "error.type": type(exc).__name__,
                    })
        # Spans ride the reply envelope (a side channel), never the
        # result value -- payload bytes stay identical with tracing
        # on or off.
        if tracer is not None:
            reply["spans"] = tracer.export_spans()
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


class _WorkerHandle:
    """Parent-side view of one pool worker."""

    __slots__ = ("process", "conn", "jobs")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.jobs = 0


class WorkerPool(JobExecutionCore):
    """N persistent pre-warmed workers behind the shared job core."""

    mode = "pool"

    def __init__(self, workers: int = 2,
                 store: Optional[ResultStore] = None,
                 timeout: Optional[float] = DEFAULT_TIMEOUT,
                 retries: int = 1,
                 retry_backoff: float = 0.1,
                 worker=execute_job_resident,
                 warm=None,
                 corpus_dir=None,
                 cache_dir=None,
                 scorer: str = "cosine",
                 segmented: bool = False,
                 shards=None,
                 mp_context=None,
                 log=NULL_LOGGER,
                 metrics=None,
                 constraint=None,
                 spawn_timeout: float = DEFAULT_SPAWN_TIMEOUT):
        """``worker`` is the resident job body ``(spec, state) ->
        envelope`` (wrap a plain ``(spec)`` body with
        :class:`_StatelessBody`); ``warm`` overrides the default
        :class:`PoolWarmup` built from ``corpus_dir``/``cache_dir``/
        ``scorer``.  The constructor blocks until every worker finished
        warming (or ``spawn_timeout`` expires), so the first request
        never pays cold-start cost.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        super().__init__(
            store=store, timeout=timeout, retries=retries,
            retry_backoff=retry_backoff, log=log, metrics=metrics,
            constraint=constraint,
        )
        self.workers = workers
        self.worker = worker
        self.warm = warm if warm is not None else PoolWarmup(
            corpus_dir=corpus_dir, cache_dir=cache_dir, scorer=scorer,
            segmented=segmented, shards=shards,
        )
        self.spawn_timeout = spawn_timeout
        if mp_context is None:
            import multiprocessing

            methods = multiprocessing.get_all_start_methods()
            mp_context = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
        self._mp = mp_context
        self._idle: queue_module.Queue = queue_module.Queue()
        self._handles: list[_WorkerHandle] = []
        self._pool_lock = threading.Lock()
        self._closed = False
        self.respawns = 0
        self.has_corpus = False
        for _ in range(workers):
            self._checkin(self._spawn())

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _spawn(self) -> _WorkerHandle:
        """Start one worker and wait for its pre-warm to complete."""
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        process = self._mp.Process(
            target=_pool_worker_main,
            args=(child_conn, self.warm, self.worker),
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(process, parent_conn)
        try:
            if not parent_conn.poll(self.spawn_timeout):
                raise PoolError(
                    f"pool worker did not warm up within "
                    f"{self.spawn_timeout:g}s"
                )
            ready = parent_conn.recv()
        except (EOFError, OSError) as exc:
            self._kill(handle)
            raise PoolError(
                f"pool worker died during warm-up: {exc}"
            ) from None
        if not ready.get("ready"):
            error = ready.get("error") or {}
            self._kill(handle)
            raise PoolError(
                "pool worker failed to warm up: "
                f"{error.get('type', 'Error')}: {error.get('message', '?')}"
            )
        self.has_corpus = bool(ready.get("corpus"))
        with self._pool_lock:
            self._handles.append(handle)
        self.log.event(
            "pool.worker_ready", pid=process.pid, corpus=self.has_corpus,
        )
        return handle

    def _kill(self, handle: _WorkerHandle):
        with self._pool_lock:
            if handle in self._handles:
                self._handles.remove(handle)
        try:
            handle.conn.close()
        except OSError:
            pass
        handle.process.terminate()
        handle.process.join(5)
        if handle.process.is_alive():
            handle.process.kill()
            handle.process.join(5)

    def _respawn(self, handle: _WorkerHandle, reason: str):
        """Replace a dead/hung worker so the pool never shrinks."""
        self._kill(handle)
        self.respawns += 1
        if self.metrics is not None:
            self.metrics.counter(
                "service_pool_respawns_total",
                "Pool workers respawned after a crash or timeout kill.",
            ).inc()
        self.log.event(
            "pool.respawn", reason=reason, respawns=self.respawns,
        )
        self._checkin(self._spawn())

    # ------------------------------------------------------------------
    # Checkout / checkin
    # ------------------------------------------------------------------

    def _checkout(self) -> _WorkerHandle:
        if self._closed:
            raise PoolError("worker pool is shut down")
        waited_from = time.perf_counter()
        handle = self._idle.get()
        waited = time.perf_counter() - waited_from
        if self.metrics is not None:
            self.metrics.histogram(
                "service_pool_queue_wait_seconds",
                "Time a request waited for a free pool worker.",
                buckets=QUEUE_WAIT_BUCKETS,
            ).observe(waited)
            self._set_depth_gauges()
        tracer = current_tracer()
        if tracer.enabled:
            tracer.record("pool.checkout", waited,
                          {"idle": self._idle.qsize()})
        return handle

    def _checkin(self, handle: _WorkerHandle):
        self._idle.put(handle)
        if self.metrics is not None:
            self._set_depth_gauges()

    def _set_depth_gauges(self):
        pool_depth_metrics(
            self.metrics, size=self.size, idle=self._idle.qsize(),
        )

    @property
    def size(self) -> int:
        with self._pool_lock:
            return len(self._handles)

    @property
    def idle_count(self) -> int:
        return self._idle.qsize()

    # ------------------------------------------------------------------
    # Request execution
    # ------------------------------------------------------------------

    def _request(self, kind: str, payload, timeout: Optional[float]):
        """One round trip to a worker; kills + respawns on trouble."""
        handle = self._checkout()
        tracer = current_tracer()
        span = None
        extras = None
        if tracer.enabled:
            span = tracer.start("pool.execute", {
                "kind": kind, "pid": handle.process.pid,
            })
            extras = {
                "span": tracer.propagation_context(span),
                "request_id": current_request_id(),
            }
        keep = True
        try:
            try:
                handle.conn.send((kind, payload, extras))
            except (BrokenPipeError, OSError):
                keep = False
                self.log.event(
                    "pool.worker_crash", kind=kind, phase="send",
                    pid=handle.process.pid,
                    exitcode=handle.process.exitcode,
                )
                self._respawn(handle, "send-failed")
                tracer.finish(span, status="ERROR",
                              attributes={"error.type": "WorkerCrash"})
                return "error", {
                    "type": "WorkerCrash",
                    "message": "pool worker pipe closed before dispatch",
                }
            if not handle.conn.poll(timeout):
                keep = False
                self.log.event(
                    "pool.worker_timeout", kind=kind, timeout=timeout,
                    pid=handle.process.pid,
                )
                self._respawn(handle, "timeout")
                tracer.finish(span, status="ERROR",
                              attributes={"error.type": "JobTimeout"})
                return "timeout", {
                    "type": "JobTimeout",
                    "message": f"job exceeded its {timeout:g}s deadline",
                }
            try:
                message = handle.conn.recv()
            except (EOFError, OSError):
                keep = False
                exitcode = handle.process.exitcode
                self.log.event(
                    "pool.worker_crash", kind=kind, phase="recv",
                    pid=handle.process.pid, exitcode=exitcode,
                )
                self._respawn(handle, "crash")
                tracer.finish(span, status="ERROR",
                              attributes={"error.type": "WorkerCrash"})
                return "error", {
                    "type": "WorkerCrash",
                    "message": (
                        "pool worker died without a result "
                        f"(exit code {exitcode})"
                    ),
                }
            handle.jobs += 1
            if span is not None:
                tracer.adopt(message.pop("spans", None), anchor=span)
            if message["ok"]:
                tracer.finish(span)
                return "ok", message["value"]
            tracer.finish(span, status="ERROR", attributes={
                "error.type": message["error"].get("type", "Error"),
            })
            return "error", message["error"]
        finally:
            if keep:
                self._checkin(handle)

    def _execute(self, spec: MatchJobSpec, timeout: Optional[float]):
        return self._request("job", spec, timeout)

    def search(self, request: dict, timeout: Optional[float] = None) -> dict:
        """Run one search on a resident-searcher worker; raises on error."""
        timeout = timeout if timeout is not None else self.timeout
        outcome, value = self._request("search", request, timeout)
        if outcome == "ok":
            return value
        raise PoolError(
            f"{value.get('type', 'Error')}: "
            f"{value.get('message', 'search failed')}"
        )

    # ------------------------------------------------------------------
    # Batch entry point (parity with BatchRunner.run)
    # ------------------------------------------------------------------

    def run(self, specs: Iterable[MatchJobSpec],
            queue: Optional[JobQueue] = None) -> BatchReport:
        """Run every spec over the pool; report in submission order."""
        queue = queue if queue is not None else JobQueue()
        records = queue.submit_all(specs)
        self.log.event(
            "batch.start", jobs=len(records), workers=self.workers,
            mode="pool",
        )
        started = time.perf_counter()
        if self.workers == 1:
            for record in records:
                self.run_record(record, queue)
        else:
            with ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="qmatch-pool",
            ) as dispatchers:
                futures = [
                    dispatchers.submit(self.run_record, record, queue)
                    for record in records
                ]
                for future in futures:
                    future.result()
        report = BatchReport(
            records=records,
            workers=self.workers,
            wall_seconds=time.perf_counter() - started,
            stats=self.stats,
            traces={
                record.job_id: self.traces[record.job_id]
                for record in records if record.job_id in self.traces
            },
        )
        self.log.event(
            "batch.done", wall_seconds=round(report.wall_seconds, 6),
            jobs=len(records), counts=report.counts,
            cache_hits=report.cache_hits,
        )
        return report

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def shutdown(self, wait: bool = True):
        """Stop every worker.  With ``wait`` the idle queue is drained
        first, so workers finish their in-flight job before the
        sentinel lands; without it, workers are terminated."""
        if self._closed:
            return
        self._closed = True
        if wait:
            # Claim every worker slot: each claim returns only when that
            # worker is idle again, i.e. its in-flight request finished.
            claimed = []
            for _ in range(self.size):
                try:
                    claimed.append(self._idle.get(timeout=self.spawn_timeout))
                except queue_module.Empty:
                    break
        with self._pool_lock:
            handles = list(self._handles)
            self._handles.clear()
        for handle in handles:
            try:
                handle.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for handle in handles:
            handle.process.join(5)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(5)
            try:
                handle.conn.close()
            except OSError:
                pass
        self.log.event("pool.shutdown", respawns=self.respawns)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.shutdown()

    def __repr__(self):
        return (
            f"<WorkerPool workers={self.workers} idle={self.idle_count} "
            f"respawns={self.respawns} corpus={self.has_corpus}>"
        )
