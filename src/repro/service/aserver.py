"""Asyncio HTTP front-end: the ``qmatch serve`` listener.

A single-threaded :func:`asyncio.start_server` accept loop replaces
the thread-per-connection :class:`http.server.ThreadingHTTPServer`:
ten thousand idle keep-alive connections cost ten thousand coroutines,
not ten thousand OS threads.  The front-end only does I/O -- parse a
request head, stream the body (the size cap is enforced on the
``Content-Length`` *before* a byte is buffered), hand off to the
shared router in :mod:`repro.service.http_api` on an executor thread,
write the response back.  Because the router is shared with the
threaded transport, both front-ends emit byte-identical JSON.

Lifecycle: SIGTERM and SIGINT trigger a **graceful drain** -- the
listener stops accepting, in-flight and queued jobs run to completion
(bounded by ``drain_timeout``), the pool/backend shuts down, and the
process exits 0.  Read-only routes keep answering during the drain;
job-submitting routes get 503 (see ``MatchService.check_admission``).
"""

from __future__ import annotations

import asyncio
import signal
import sys
import time
from typing import Optional

from repro.obs.log import NULL_LOGGER
from repro.service.http_api import (
    ApiResponse,
    finish_request,
    handle_api_request,
    open_request,
    stamp_request_id,
    too_large_response,
)

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Maximum bytes of one request head (request line + headers).
MAX_HEAD_BYTES = 64 * 1024

SERVER_NAME = "qmatch-serve/1.0"


class _BadRequest(Exception):
    """The request head could not be parsed; the connection closes."""


async def _read_head(reader) -> Optional[tuple]:
    """Parse one request head into (method, path, version, headers).

    Returns None on a cleanly closed idle connection (EOF before any
    bytes), raises :class:`_BadRequest` on garbage.
    """
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise _BadRequest("request line too long") from None
    if not line:
        return None
    try:
        method, path, version = line.decode("latin-1").strip().split(" ", 2)
    except ValueError:
        raise _BadRequest("malformed request line") from None
    headers = {}
    head_bytes = len(line)
    while True:
        try:
            line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            raise _BadRequest("header line too long") from None
        if not line:
            raise _BadRequest("connection closed mid-headers")
        head_bytes += len(line)
        if head_bytes > MAX_HEAD_BYTES:
            raise _BadRequest("request head too large")
        if line in (b"\r\n", b"\n"):
            return method, path, version, headers
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise _BadRequest("malformed header line")
        headers[name.strip().lower()] = value.strip()


def _render(response: ApiResponse, keep_alive: bool) -> bytes:
    reason = _REASONS.get(response.status, "Unknown")
    head = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Server: {SERVER_NAME}",
        f"Content-Type: {response.content_type}",
        f"Content-Length: {len(response.body)}",
    ]
    for name, value in response.headers:
        head.append(f"{name}: {value}")
    head.append(
        "Connection: keep-alive" if keep_alive else "Connection: close"
    )
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + response.body


class AsyncMatchServer:
    """The accept loop + per-connection protocol around one service."""

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0,
                 verbose: bool = False, log=NULL_LOGGER):
        self.service = service
        self.host = host
        self.port = port
        self.verbose = verbose
        self.log = log
        self._server = None
        self._connections = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self):
        self._server = await asyncio.start_server(
            self._client_connected, self.host, self.port,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def stop(self, drain_timeout: Optional[float] = 30.0) -> bool:
        """Stop accepting, drain the service, settle open connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        drained = await loop.run_in_executor(
            None, self.service.drain, drain_timeout,
        )
        if self._connections:
            await asyncio.wait(
                {asyncio.ensure_future(c) for c in self._connections},
                timeout=2.0,
            )
        return drained

    # ------------------------------------------------------------------
    # Per-connection protocol
    # ------------------------------------------------------------------

    async def _client_connected(self, reader, writer):
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_connection(self, reader, writer):
        loop = asyncio.get_running_loop()
        while True:
            started = time.perf_counter()
            try:
                head = await _read_head(reader)
            except _BadRequest as exc:
                writer.write(_render(ApiResponse(
                    status=400,
                    body=(f'{{\n  "error": "{exc}"\n}}').encode("utf-8"),
                ), keep_alive=False))
                await writer.drain()
                return
            if head is None:
                return
            method, path, version, headers = head
            tracer, request_id = open_request(self.service, headers)
            root = tracer.start("http.request", {
                "method": method, "path": path.partition("?")[0],
                "transport": "asyncio",
            }) if tracer.enabled else None
            keep_alive = (
                version.upper() != "HTTP/1.0"
                and headers.get("connection", "").lower() != "close"
            )
            raw = None
            if method in ("POST", "PUT", "PATCH"):
                try:
                    length = int(headers.get("content-length") or 0)
                except ValueError:
                    length = 0
                if length > self.service.max_body_bytes:
                    # Reject on the declared length -- the body is
                    # never buffered, so the connection cannot be
                    # reused afterwards.
                    response = too_large_response(
                        self.service, method, path, length, started,
                    )
                    stamp_request_id(response, request_id)
                    if root is not None:
                        tracer.finish(root, status="ERROR",
                                      attributes={"status": 413})
                        finish_request(self.service, tracer)
                    writer.write(_render(response, keep_alive=False))
                    await writer.drain()
                    self._log_request(writer, method, path, response.status)
                    return
                read_span = tracer.start("request.read") \
                    if tracer.enabled else None
                raw = (
                    await reader.readexactly(length) if length > 0 else b""
                )
                if read_span is not None:
                    tracer.finish(read_span,
                                  attributes={"bytes": length})
            response = await loop.run_in_executor(
                None, handle_api_request,
                self.service, method, path, raw, started,
                tracer, request_id,
            )
            keep_alive = keep_alive and not response.close
            write_span = tracer.start("response.write") \
                if tracer.enabled else None
            writer.write(_render(response, keep_alive=keep_alive))
            await writer.drain()
            if write_span is not None:
                tracer.finish(write_span,
                              attributes={"bytes": len(response.body)})
            if root is not None:
                tracer.finish(root, attributes={
                    "status": response.status, "route": response.route,
                })
                finish_request(self.service, tracer)
            self._log_request(writer, method, path, response.status)
            if not keep_alive:
                return

    def _log_request(self, writer, method: str, path: str, status: int):
        if not self.verbose:
            return
        peer = writer.get_extra_info("peername")
        host = peer[0] if peer else "-"
        sys.stderr.write(f'{host} - "{method} {path}" {status}\n')


def run_async_server(service, host: str = "127.0.0.1", port: int = 8765,
                     verbose: bool = False,
                     drain_timeout: Optional[float] = 30.0,
                     log=NULL_LOGGER, start_info: Optional[dict] = None) -> int:
    """Run the front-end until SIGTERM/SIGINT, then drain and exit 0.

    The blocking body of ``qmatch serve``: binds, emits the
    ``serve.start`` event (with the resolved URL -- port 0 picks an
    ephemeral port), and parks until a termination signal starts the
    graceful drain.  ``serve.stop`` reports the signal and whether the
    drain finished cleanly inside ``drain_timeout``.
    """

    async def _main() -> int:
        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()
        why = {"reason": "interrupt"}

        def _on_signal(name: str):
            why["reason"] = name
            stopping.set()

        for sig, name in ((signal.SIGTERM, "sigterm"),
                          (signal.SIGINT, "interrupt")):
            try:
                loop.add_signal_handler(sig, _on_signal, name)
            except (NotImplementedError, RuntimeError):
                pass
        server = AsyncMatchServer(
            service, host=host, port=port, verbose=verbose, log=log,
        )
        await server.start()
        log.event(
            "serve.start", url=server.url, transport="asyncio",
            **(start_info or {}),
        )
        try:
            await stopping.wait()
        except asyncio.CancelledError:
            pass
        drained = await server.stop(drain_timeout=drain_timeout)
        log.event("serve.stop", reason=why["reason"], drained=drained)
        return 0

    try:
        return asyncio.run(_main())
    except KeyboardInterrupt:
        # Platforms without add_signal_handler (or a second Ctrl-C
        # during the drain) land here; the service still shuts down.
        log.event("serve.stop", reason="interrupt", drained=False)
        service.shutdown(wait=False)
        return 0
