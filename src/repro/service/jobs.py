"""The job model of the batch match service.

A :class:`MatchJobSpec` is a fully self-contained description of one
match run: both schemas as canonical XSD text (picklable, so the spec
can cross a process boundary), the algorithm name and every run
parameter.  A :class:`JobRecord` is its mutable lifecycle envelope --
state, attempts, timing, error record, result payload -- and a
:class:`JobQueue` is the thread-safe registry both the
:class:`~repro.service.runner.BatchRunner` and the HTTP
:class:`~repro.service.server.MatchService` drive records through.

Job states follow the usual queue lifecycle::

    pending -> running -> done
                       -> failed      (worker error / crash, retries spent)
                       -> timed-out   (deadline exceeded, retries spent)

A failed or timed-out job never aborts its batch; it carries a
structured ``error`` record instead.
"""

from __future__ import annotations

import enum
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.service.store import content_hash


class JobState(str, enum.Enum):
    """Lifecycle state of one match job."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    TIMED_OUT = "timed-out"

    @property
    def is_terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.TIMED_OUT)


@dataclass(frozen=True)
class MatchJobSpec:
    """Everything needed to run one match job, self-contained.

    ``source_xsd`` / ``target_xsd`` are canonical XSD text (what
    :func:`repro.xsd.serializer.to_xsd` emits), so the content hashes
    below are stable across whitespace/formatting differences in the
    original files.  ``weights`` only applies to the ``qmatch``
    algorithm; ``timeout`` overrides the runner's default per-job
    deadline.
    """

    source_xsd: str
    target_xsd: str
    algorithm: str = "qmatch"
    threshold: float = 0.5
    strategy: Optional[str] = None
    weights: Optional[tuple] = None
    timeout: Optional[float] = None
    #: Record a per-pair decision trace (see :mod:`repro.obs.trace`).
    #: The trace travels back to the parent in the worker envelope, not
    #: in the stored result payload, so it never affects the
    #: content-addressed store key or cached bytes.
    trace: bool = False
    label: str = ""
    source_name: str = ""
    target_name: str = ""
    source_hash: str = ""
    target_hash: str = ""
    #: Optional instance-evidence profiles (``{node_path: profile_dict}``
    #: as :meth:`repro.ingest.profile.ValueProfile.as_dict` emits them),
    #: attached to the parsed trees before matching.  Plain dicts so the
    #: spec stays picklable across the process boundary; ``None`` -- the
    #: default -- leaves every pre-profile code path untouched.
    source_profiles: Optional[dict] = None
    target_profiles: Optional[dict] = None

    def __post_init__(self):
        if not self.source_hash:
            object.__setattr__(
                self, "source_hash", content_hash(self.source_xsd)
            )
        if not self.target_hash:
            object.__setattr__(
                self, "target_hash", content_hash(self.target_xsd)
            )
        if not self.label:
            source = self.source_name or self.source_hash[:8]
            target = self.target_name or self.target_hash[:8]
            object.__setattr__(
                self, "label", f"{source}~{target}:{self.algorithm}"
            )

    def matcher_kwargs(self) -> dict:
        """Factory kwargs for :meth:`MatcherRegistry.create`."""
        if self.weights is None:
            return {}
        from repro.core.config import QMatchConfig
        from repro.core.weights import AxisWeights

        return {
            "config": QMatchConfig(
                weights=AxisWeights.from_sequence(self.weights)
            )
        }


@dataclass
class JobRecord:
    """Mutable lifecycle envelope of one submitted job."""

    job_id: str
    spec: MatchJobSpec
    state: JobState = JobState.PENDING
    #: Number of execution attempts so far (0 while pending; a cache
    #: hit completes with 0 attempts).
    attempts: int = 0
    cache_hit: bool = False
    #: Wall time of the successful attempt (or the last failed one).
    elapsed_seconds: float = 0.0
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Structured error record when state is failed/timed-out:
    #: ``{"type": ..., "message": ..., "attempts": ...}``.
    error: Optional[dict] = None
    #: The stored result payload (see ``repro.matching.io``) when done.
    result: Optional[dict] = None
    #: A parsed :class:`repro.constraints.Constraint` to evaluate once the
    #: job completes (set per-record by the CLI/service; never part of the
    #: spec, so store keys and cached bytes are unaffected).
    constraint: Optional[object] = None
    #: The :meth:`ConstraintReport.as_dict` verdict, set by the runner
    #: after a successful run when a constraint was attached.
    constraint_report: Optional[dict] = None

    def snapshot(self, include_result: bool = False) -> dict:
        """JSON-friendly view (what the HTTP API and run report emit)."""
        data = {
            "job_id": self.job_id,
            "label": self.spec.label,
            "algorithm": self.spec.algorithm,
            "threshold": self.spec.threshold,
            "source": self.spec.source_name,
            "target": self.spec.target_name,
            "source_hash": self.spec.source_hash,
            "target_hash": self.spec.target_hash,
            "state": self.state.value,
            "attempts": self.attempts,
            "cache_hit": self.cache_hit,
            "elapsed_seconds": self.elapsed_seconds,
            "error": self.error,
        }
        if include_result:
            data["result"] = self.result
        elif self.result is not None:
            data["tree_qom"] = self.result.get("tree_qom")
            data["found"] = len(self.result.get("correspondences", ()))
        if self.constraint_report is not None:
            if include_result:
                data["constraint"] = self.constraint_report
            else:
                data["constraint"] = {
                    "name": self.constraint_report.get("name"),
                    "passed": self.constraint_report.get("passed"),
                    "blame": self.constraint_report.get("blame"),
                }
        return data


class JobQueue:
    """Thread-safe job registry with sequential, deterministic ids.

    Insertion order is preserved: :meth:`records` returns jobs in
    submission order regardless of completion order, which is what
    makes batch reports deterministic under any worker count.

    With ``max_records`` set, the queue is **bounded**: once the record
    count passes the cap, the oldest *terminal* records (done, failed,
    timed-out) are evicted so a long-lived server's memory stays flat.
    Pending/running jobs are never evicted.  Evicted jobs stay visible
    in :meth:`counts` through per-state archive counters, so ``/stats``
    totals remain monotonic even after their full records are gone.
    """

    def __init__(self, prefix: str = "job",
                 max_records: Optional[int] = None):
        if max_records is not None and max_records < 1:
            raise ValueError(
                f"max_records must be >= 1, got {max_records}"
            )
        self._prefix = prefix
        self._lock = threading.Lock()
        self._records: dict[str, JobRecord] = {}
        self._ids = itertools.count(1)
        self.max_records = max_records
        #: Jobs not in pending/running state -- the admission-control
        #: signal, maintained incrementally (never an O(n) scan).
        self._active = 0
        self._evicted: dict[str, int] = {}

    def _evict_overflow_locked(self):
        if self.max_records is None or len(self._records) <= self.max_records:
            return
        overflow = len(self._records) - self.max_records
        evictable = [
            job_id for job_id, record in self._records.items()
            if record.state.is_terminal
        ]
        for job_id in evictable[:overflow]:
            record = self._records.pop(job_id)
            state = record.state.value
            self._evicted[state] = self._evicted.get(state, 0) + 1

    def submit(self, spec: MatchJobSpec) -> JobRecord:
        with self._lock:
            job_id = f"{self._prefix}-{next(self._ids):04d}"
            record = JobRecord(job_id=job_id, spec=spec)
            self._records[job_id] = record
            self._active += 1
            self._evict_overflow_locked()
            return record

    def submit_all(self, specs: Iterable[MatchJobSpec]) -> list[JobRecord]:
        return [self.submit(spec) for spec in specs]

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._records.get(job_id)

    def records(self) -> list[JobRecord]:
        with self._lock:
            return list(self._records.values())

    def counts(self) -> dict:
        """Jobs per state (every state present, zeros included).

        Evicted records stay counted under their terminal state, plus
        an explicit ``evicted`` total, so the view is monotonic over a
        bounded queue's lifetime.
        """
        counts = {state.value: 0 for state in JobState}
        for record in self.records():
            counts[record.state.value] += 1
        with self._lock:
            evicted = dict(self._evicted)
        for state, total in evicted.items():
            counts[state] += total
        counts["evicted"] = sum(evicted.values())
        return counts

    @property
    def active(self) -> int:
        """Jobs currently pending or running (the admission signal)."""
        with self._lock:
            return self._active

    def page(self, offset: int = 0,
             limit: Optional[int] = None) -> tuple[list[JobRecord], int]:
        """One page of records in submission order: ``(records, total)``."""
        with self._lock:
            records = list(self._records.values())
        total = len(records)
        if offset:
            records = records[offset:]
        if limit is not None:
            records = records[:limit]
        return records, total

    # ------------------------------------------------------------------
    # State transitions (used by the runner / service under their locks)
    # ------------------------------------------------------------------

    def mark_running(self, record: JobRecord):
        with self._lock:
            record.state = JobState.RUNNING
            record.attempts += 1
            if record.started_at is None:
                record.started_at = time.time()

    def mark_done(self, record: JobRecord, result: dict,
                  elapsed: float = 0.0, cache_hit: bool = False):
        with self._lock:
            if not record.state.is_terminal:
                self._active -= 1
            record.state = JobState.DONE
            record.result = result
            record.elapsed_seconds = elapsed
            record.cache_hit = cache_hit
            record.finished_at = time.time()
            record.error = None

    def mark_failed(self, record: JobRecord, error: dict,
                    timed_out: bool = False, elapsed: float = 0.0):
        with self._lock:
            if not record.state.is_terminal:
                self._active -= 1
            record.state = (
                JobState.TIMED_OUT if timed_out else JobState.FAILED
            )
            record.error = dict(error, attempts=record.attempts)
            record.elapsed_seconds = elapsed
            record.finished_at = time.time()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self):
        return iter(self.records())
