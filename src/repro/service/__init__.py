"""Batch match service: run many match jobs concurrently and durably.

The paper presents QMatch as a single-pair algorithm; real schema
integration (De Meo et al., arXiv:0911.3600) is a many-pairs batch
process over a corpus.  This subpackage is the serving layer on top of
:mod:`repro.engine`:

- :mod:`repro.service.jobs` -- the :class:`MatchJobSpec` /
  :class:`JobRecord` / :class:`JobQueue` model with explicit job
  states, optionally bounded with oldest-terminal eviction;
- :mod:`repro.service.store` -- a content-addressed
  :class:`ResultStore` keyed by (schema hashes, config fingerprint);
- :mod:`repro.service.manifest` -- the ``qmatch batch`` manifest format;
- :mod:`repro.service.runner` -- :class:`JobExecutionCore`, the
  backend-agnostic per-job state machine (cache, retry, timeout,
  structured errors), and :class:`BatchRunner`, its fork-per-attempt
  batch backend;
- :mod:`repro.service.pool` -- :class:`WorkerPool`, the persistent
  pre-warmed process pool backend (resident thesaurus, parsed-tree
  cache, resident corpus searcher) behind ``qmatch serve``;
- :mod:`repro.service.http_api` -- the transport-agnostic HTTP JSON
  router (routes, admission control, body limits, metrics);
- :mod:`repro.service.server` -- :class:`MatchService` and the
  threaded HTTP front end; :mod:`repro.service.aserver` -- the asyncio
  front end with graceful drain that ``qmatch serve`` runs;
- :mod:`repro.service.validation` -- input validation shared by the CLI
  flags, the manifest parser and the HTTP API.
"""

from repro.service.jobs import JobQueue, JobRecord, JobState, MatchJobSpec
from repro.service.manifest import load_manifest
from repro.service.pool import PoolError, WorkerPool, execute_job_resident
from repro.service.runner import (
    BatchReport,
    BatchRunner,
    JobExecutionCore,
    execute_job,
)
from repro.service.server import MatchService, create_server
from repro.service.store import ResultStore, content_hash, schema_content_hash
from repro.service.validation import (
    ValidationError,
    validate_algorithm,
    validate_threshold,
    validate_weights,
)

__all__ = [
    "BatchReport",
    "BatchRunner",
    "JobExecutionCore",
    "JobQueue",
    "JobRecord",
    "JobState",
    "MatchJobSpec",
    "MatchService",
    "PoolError",
    "ResultStore",
    "ValidationError",
    "WorkerPool",
    "content_hash",
    "create_server",
    "execute_job",
    "execute_job_resident",
    "load_manifest",
    "schema_content_hash",
    "validate_algorithm",
    "validate_threshold",
    "validate_weights",
]
