"""Content-addressed persistence of match results.

A batch over a schema corpus is dominated by recomputation of pairs
that have not changed.  :class:`ResultStore` keys every result by

    sha256(source schema content hash,
           target schema content hash,
           config fingerprint)

where the schema hashes cover the *canonical* serialized XSD text (so
formatting-only edits do not invalidate entries) and the config
fingerprint covers the algorithm plus every score-shaping parameter
(see :meth:`repro.matching.base.Matcher.fingerprint`).  Re-running a
corpus therefore only recomputes pairs whose schemas or configuration
actually changed; everything else is a cache hit that returns the
stored payload byte for byte.

Entries are one JSON file each under ``root/<key[:2]>/<key>.json`` --
human-inspectable, rsync-able, and safely shared between concurrent
writers because writes are atomic (temp file + rename) and idempotent
(same key => same bytes).

Hit/miss counters are folded into an :class:`~repro.engine.stats.EngineStats`
instance (cache name ``result-store``), so service metrics render and
merge exactly like the engine's own cache instrumentation.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from repro.engine.stats import EngineStats

#: EngineStats cache name under which hit/miss counters accumulate.
STORE_CACHE = "result-store"


def content_hash(text: str) -> str:
    """sha256 of normalized text content (trailing whitespace ignored)."""
    return hashlib.sha256(text.strip().encode("utf-8")).hexdigest()


def schema_content_hash(tree) -> str:
    """Content hash of a schema tree via its canonical XSD serialization."""
    from repro.xsd.serializer import to_xsd

    return content_hash(to_xsd(tree))


def store_key(source_hash: str, target_hash: str, fingerprint: str) -> str:
    """The content address of one (schema pair, configuration) result."""
    material = "\0".join((source_hash, target_hash, fingerprint))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def canonical_json(payload: dict) -> str:
    """Deterministic JSON text -- equal payloads give equal bytes."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def atomic_write_text(path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + rename).

    A concurrent reader sees either the previous content or the new
    content, never a partial write.  Parent directories are created.
    """
    return atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_bytes(path, blob: bytes) -> Path:
    """Write ``blob`` to ``path`` atomically (temp file + rename).

    The binary twin of :func:`atomic_write_text`; the packed corpus
    segment files (postings, MinHash signatures) go through this.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=".tmp-", suffix=path.suffix
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


class ResultStore:
    """Content-addressed, JSON-on-disk match-result cache."""

    def __init__(self, root, stats: Optional[EngineStats] = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = stats if stats is not None else EngineStats()

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    def key_for(self, source_hash: str, target_hash: str,
                fingerprint: str) -> str:
        return store_key(source_hash, target_hash, fingerprint)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def get_text(self, key: str) -> Optional[str]:
        """The stored entry's exact bytes (as text), or ``None`` on miss."""
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.stats.record_miss(STORE_CACHE)
            return None
        self.stats.record_hit(STORE_CACHE)
        return text

    def get(self, key: str) -> Optional[dict]:
        """The stored payload, or ``None`` on miss (counted either way)."""
        text = self.get_text(key)
        if text is None:
            return None
        return json.loads(text)

    def put(self, key: str, payload: dict) -> Path:
        """Atomically persist ``payload`` under ``key``; returns the path.

        Writes are temp-file + rename so a concurrent reader never sees
        a half-written entry, and last-writer-wins is harmless because
        equal keys imply equal canonical bytes.
        """
        path = atomic_write_text(self.path_for(key), canonical_json(payload))
        self.stats.count("result-store.writes")
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    @property
    def hits(self) -> int:
        return self.stats.cache(STORE_CACHE).hits

    @property
    def misses(self) -> int:
        return self.stats.cache(STORE_CACHE).misses

    @property
    def hit_rate(self) -> float:
        return self.stats.hit_rate(STORE_CACHE)

    def __repr__(self):
        return (
            f"<ResultStore root={str(self.root)!r} entries={len(self)} "
            f"hits={self.hits} misses={self.misses}>"
        )
