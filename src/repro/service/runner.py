"""Job execution core + the fork-per-job parallel batch runner.

Two layers live here, deliberately separated so every execution
backend shares one set of semantics:

:class:`JobExecutionCore` is the **per-job state machine**, backend
agnostic.  It drives a :class:`~repro.service.jobs.JobRecord` through
its lifecycle:

1. **Cache check** -- the content-addressed
   :class:`~repro.service.store.ResultStore` is consulted first; a hit
   completes the job without any worker (``cache_hit=True``, zero
   attempts).
2. **Bounded retry with backoff** -- timeouts and errors are retried up
   to ``retries`` extra attempts with exponential backoff, then land in
   the ``timed-out`` / ``failed`` state.  A bad pair never aborts the
   batch.
3. **Stats / trace / metrics collection** -- worker envelopes fold
   their :class:`~repro.engine.stats.EngineStats` and trace snapshots
   back into the core under one lock, and every terminal job emits a
   log event plus metric samples.

What the core does *not* define is how one attempt actually executes:
subclasses implement ``_execute(spec, timeout)``.  Two backends exist:

- :class:`BatchRunner` (here) -- **fork-per-job**: each attempt runs
  :func:`execute_job` in a fresh ``multiprocessing`` child process,
  which gives a real per-job deadline (the child is terminated on
  timeout) and turns a hard worker crash (segfault, ``os._exit``) into
  a structured error record instead of a poisoned pool.  Best for
  batch workloads where per-job process cost amortizes over long jobs.
- :class:`~repro.service.pool.WorkerPool` -- **persistent pre-warmed
  workers**: attempts dispatch over pipes to long-lived processes that
  keep expensive state (thesaurus, parsed schemas, corpus index)
  resident.  Best for interactive serving, where fork + re-import +
  re-parse per request dominates latency.

Because both run the *same* state machine, retry/timeout/crash
semantics, cache behaviour, and result bytes are identical across
backends -- asserted by the byte-identity tests.

Concurrency in :class:`BatchRunner` is a thread pool of dispatchers,
each managing one child process at a time, so ``workers=4`` means at
most four concurrent match processes.  ``inline=True`` skips process
isolation and runs jobs on the dispatcher thread itself -- the lowest
latency mode, and the fallback where ``fork``/``spawn`` is unavailable
(timeouts are then not enforceable).

A run produces a :class:`BatchReport`: job records in deterministic
submission order, per-state counts, store hit rates and the merged
:class:`~repro.engine.stats.EngineStats` of every worker (worker
processes return their stats as dicts; the parent folds them back in
through :meth:`EngineStats.from_dict`).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.constraints.evidence import attach_result_axes
from repro.engine.registry import DEFAULT_REGISTRY
from repro.engine.stats import EngineStats
from repro.matching.io import result_to_payload
from repro.obs.log import NULL_LOGGER
from repro.obs.spans import (
    SpanTracer,
    current_request_id,
    current_tracer,
    use_request_id,
    use_tracer,
)
from repro.obs.trace import TraceRecorder, trace_run_id
from repro.service.jobs import JobQueue, JobRecord, JobState, MatchJobSpec
from repro.service.store import ResultStore

#: Default per-job deadline (seconds) when neither the spec nor the
#: runner overrides it.  Generous: the paper's largest pair (protein,
#: ~4k elements) matches well inside this.
DEFAULT_TIMEOUT = 300.0


def job_fingerprint(spec: MatchJobSpec) -> str:
    """The config fingerprint a run of ``spec`` would stamp on its result.

    Computed by instantiating the (cheap) matcher and asking it, so the
    store key always agrees with what the worker will produce.  A spec
    carrying instance profiles folds their canonical-JSON hash in --
    different data must never share a cached result -- while a
    profile-less spec keeps the exact pre-profile fingerprint (and thus
    store key).
    """
    matcher = DEFAULT_REGISTRY.create(spec.algorithm, **spec.matcher_kwargs())
    fingerprint = matcher.fingerprint(spec.threshold, spec.strategy)
    if spec.source_profiles or spec.target_profiles:
        from repro.service.store import content_hash

        blob = json.dumps(
            [spec.source_profiles or {}, spec.target_profiles or {}],
            sort_keys=True, separators=(",", ":"),
        )
        fingerprint = f"{fingerprint}-prof{content_hash(blob)[:16]}"
    return fingerprint


def execute_job(spec: MatchJobSpec) -> dict:
    """Worker body: run one match job and return a picklable envelope.

    Returns ``{"result": <stored payload>, "stats": <EngineStats dict>,
    "elapsed": seconds}``.  The result payload is the self-describing
    format of :mod:`repro.matching.io` plus the schema content hashes,
    so a store entry alone identifies what produced it.  Deliberately
    deterministic: no timestamps, no timings inside the payload -- a
    warm-cache rerun must be byte-identical.

    With ``spec.trace`` set, a :class:`~repro.obs.trace.TraceRecorder`
    rides through the match and comes back as ``envelope["trace"]``
    (an :meth:`~repro.obs.trace.TraceRecorder.as_dict` snapshot).  Its
    run ID derives from the spec's content hashes and the matcher
    fingerprint, so the trace of a forked worker is byte-identical to
    the same job run inline or via ``qmatch match --trace``.
    """
    from repro.xsd.parser import parse_xsd

    started = time.perf_counter()
    source = parse_xsd(spec.source_xsd, name=spec.source_name or None)
    target = parse_xsd(spec.target_xsd, name=spec.target_name or None)
    if spec.source_profiles or spec.target_profiles:
        from repro.ingest.profile import attach_profiles

        if spec.source_profiles:
            attach_profiles(source, spec.source_profiles)
        if spec.target_profiles:
            attach_profiles(target, spec.target_profiles)
    matcher = DEFAULT_REGISTRY.create(spec.algorithm, **spec.matcher_kwargs())
    tracer = None
    if spec.trace:
        tracer = TraceRecorder(run_id=trace_run_id(
            spec.source_hash, spec.target_hash,
            matcher.fingerprint(spec.threshold, spec.strategy),
        ))
    context = matcher.make_context(source, target, tracer=tracer)
    result = matcher.match(
        source, target, threshold=spec.threshold, strategy=spec.strategy,
        context=context,
    )
    payload = result_to_payload(result)
    attach_result_axes(payload, result, matcher, source, target, context=context)
    payload["source_hash"] = spec.source_hash
    payload["target_hash"] = spec.target_hash
    stats = result.stats.as_dict() if result.stats is not None else {}
    envelope = {
        "result": payload,
        "stats": stats,
        "elapsed": time.perf_counter() - started,
    }
    if tracer is not None:
        envelope["trace"] = tracer.as_dict()
    return envelope


def _process_entry(conn, worker, spec):
    """Child-process entry: run ``worker`` and ship the outcome back."""
    try:
        value = worker(spec)
        conn.send({"ok": True, "value": value})
    except BaseException as exc:  # noqa: BLE001 -- boundary: report, don't die
        conn.send({
            "ok": False,
            "error": {"type": type(exc).__name__, "message": str(exc)},
        })
    finally:
        conn.close()


class _SpanWorker:
    """Carries the request span context across the fork boundary.

    A picklable wrapper (plain attributes, module-level class -- works
    under any multiprocessing start method) that builds the worker-side
    tracer, runs the job body under it, and rides the exported spans
    back on the envelope.  The parent pops the ``spans`` key before the
    result payload goes anywhere, so stored/served bytes are identical
    with tracing on or off.
    """

    def __init__(self, body, context: dict, request_id: str):
        self.body = body
        self.context = context
        self.request_id = request_id

    def __call__(self, spec):
        tracer = SpanTracer.from_context(self.context)
        with use_request_id(self.request_id), use_tracer(tracer):
            with tracer.span("worker.job", {"pid": os.getpid()}):
                envelope = self.body(spec)
        if isinstance(envelope, dict):
            envelope["spans"] = tracer.export_spans()
        return envelope


@dataclass
class BatchReport:
    """Machine-readable outcome of one batch run."""

    records: list
    workers: int
    wall_seconds: float
    stats: EngineStats
    #: job_id -> trace snapshot (:meth:`TraceRecorder.as_dict`) for the
    #: jobs that requested tracing and completed via a worker.
    traces: dict = field(default_factory=dict)

    @property
    def counts(self) -> dict:
        counts = {state.value: 0 for state in JobState}
        for record in self.records:
            counts[record.state.value] += 1
        return counts

    @property
    def cache_hits(self) -> int:
        return sum(1 for record in self.records if record.cache_hit)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / len(self.records) if self.records else 0.0

    @property
    def ok(self) -> bool:
        """True when every job completed (possibly from cache)."""
        return all(r.state is JobState.DONE for r in self.records)

    @property
    def constraint_failures(self) -> list:
        """Records whose constraint verdict (if any) is a FAIL."""
        return [
            record for record in self.records
            if record.constraint_report is not None
            and not record.constraint_report.get("passed")
        ]

    @property
    def constraints_ok(self) -> bool:
        """True when no evaluated constraint failed (vacuously true)."""
        return not self.constraint_failures

    def to_dict(self, include_results: bool = False) -> dict:
        data = {
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "summary": dict(
                self.counts,
                total=len(self.records),
                cache_hits=self.cache_hits,
                cache_hit_rate=self.cache_hit_rate,
            ),
            "jobs": [
                record.snapshot(include_result=include_results)
                for record in self.records
            ],
            "stats": self.stats.as_dict(),
        }
        evaluated = [
            record for record in self.records
            if record.constraint_report is not None
        ]
        if evaluated:
            failed = len(self.constraint_failures)
            data["summary"]["constraints"] = {
                "evaluated": len(evaluated),
                "passed": len(evaluated) - failed,
                "failed": failed,
            }
        return data

    def to_json(self, include_results: bool = False,
                indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(include_results), indent=indent)

    def render(self) -> str:
        """Human-readable report table plus the summary line."""
        from repro.evaluation.harness import render_table

        rows = []
        for record in self.records:
            qom = record.result.get("tree_qom") if record.result else None
            found = (
                len(record.result.get("correspondences", ()))
                if record.result else None
            )
            note = ""
            if record.cache_hit:
                note = "cache"
            elif record.error is not None:
                note = record.error.get("message", "")[:48]
            verdict = record.constraint_report
            if verdict is not None:
                mark = "PASS" if verdict.get("passed") else "FAIL"
                note = f"constraint {mark}" + (f"; {note}" if note else "")
            rows.append((
                record.job_id, record.spec.label, record.state.value,
                record.attempts, qom, found, record.elapsed_seconds, note,
            ))
        table = render_table(
            ["job", "label", "state", "attempts", "tree QoM", "found",
             "seconds", "note"],
            rows,
        )
        counts = self.counts
        summary = (
            f"{len(self.records)} jobs: {counts['done']} done, "
            f"{counts['failed']} failed, {counts['timed-out']} timed out; "
            f"{self.cache_hits} cache hit"
            f"{'s' if self.cache_hits != 1 else ''} "
            f"({self.cache_hit_rate:.0%}); "
            f"{self.workers} worker{'s' if self.workers != 1 else ''}, "
            f"{self.wall_seconds:.2f}s wall"
        )
        lines = [table, summary]
        for record in self.constraint_failures:
            blame = record.constraint_report.get("blame") or "constraint failed"
            lines.append(
                f"constraint FAIL {record.job_id} ({record.spec.label}): {blame}"
            )
        return "\n".join(lines)


class JobExecutionCore:
    """The backend-agnostic per-job state machine.

    Owns cache lookup, bounded retry with backoff, stats/trace
    aggregation and terminal-state bookkeeping.  Subclasses provide the
    actual attempt execution via :meth:`_execute` and whatever process
    lifecycle that requires (fork-per-job in :class:`BatchRunner`,
    persistent pre-warmed workers in
    :class:`~repro.service.pool.WorkerPool`).
    """

    def __init__(self, store: Optional[ResultStore] = None,
                 timeout: Optional[float] = DEFAULT_TIMEOUT,
                 retries: int = 1,
                 retry_backoff: float = 0.1,
                 log=NULL_LOGGER,
                 metrics=None,
                 constraint=None):
        """``retries`` is the number of *extra* attempts after the first;
        ``retry_backoff`` seconds double per retry.  ``log`` is an
        :class:`~repro.obs.log.EventLogger` (disabled by default);
        ``metrics`` an optional
        :class:`~repro.obs.metrics.MetricsRegistry` fed per-job
        counters/latency histograms.  ``constraint`` is an optional
        default :class:`repro.constraints.Constraint` evaluated against
        every completed job (a record's own ``constraint`` field takes
        precedence); verdicts land on ``record.constraint_report``.
        """
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.store = store
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.log = log
        self.metrics = metrics
        self.constraint = constraint
        #: job_id -> trace snapshot for traced jobs, collected from the
        #: worker envelopes (guarded by the stats lock).
        self.traces: dict[str, dict] = {}
        #: Aggregated over the whole run: every worker's EngineStats
        #: plus the store's hit/miss counters.  Guarded by a lock --
        #: run_record is called concurrently from dispatcher threads.
        self.stats = EngineStats()
        self._stats_lock = threading.Lock()
        if self.store is not None:
            # Fold store counters into the runner's metrics object so
            # one report covers compute and cache behaviour.
            self.store.stats = self.stats

    # ------------------------------------------------------------------
    # Per-job state machine (also driven directly by the HTTP service)
    # ------------------------------------------------------------------

    def run_record(self, record: JobRecord, queue: JobQueue):
        """Drive one record to a terminal state.  Never raises for
        job-level problems -- those become error records."""
        spec = record.spec
        tracer = current_tracer()
        span = tracer.start(
            "job.execute", {"job_id": record.job_id, "label": spec.label},
        ) if tracer.enabled else None
        try:
            key = None
            if self.store is not None:
                lookup = tracer.start("cache.lookup") \
                    if tracer.enabled else None
                key = self.store.key_for(
                    spec.source_hash, spec.target_hash, job_fingerprint(spec)
                )
                cached = self.store.get(key)
                tracer.finish(lookup, attributes={"hit": cached is not None})
                if cached is not None:
                    queue.mark_done(record, cached, cache_hit=True)
                    self._observe_job(record, "cached", 0.0)
                    return
            self._run_attempts(record, queue, key)
        except Exception as exc:  # noqa: BLE001 -- batch must survive
            queue.mark_failed(
                record,
                {"type": type(exc).__name__, "message": str(exc)},
            )
            self._observe_job(record, "failed", 0.0, error=str(exc))
        finally:
            self._apply_constraint(record)
            tracer.finish(span, attributes={"state": record.state.value})

    def _apply_constraint(self, record: JobRecord):
        """Evaluate the record's (or the core's default) constraint.

        Always runs in the parent process over the completed result
        payload plus trees re-parsed from the spec's canonical XSD text
        -- never inside a worker -- so the report bytes cannot depend on
        which backend executed the job.  Jobs that failed outright get
        no verdict (their error record already fails the batch).
        """
        constraint = (
            record.constraint if record.constraint is not None
            else self.constraint
        )
        if constraint is None or record.constraint_report is not None:
            return
        if record.state is not JobState.DONE or record.result is None:
            return
        from repro.constraints import MatchEvidence, evaluate_constraint
        from repro.xsd.parser import parse_xsd

        spec = record.spec
        tracer = current_tracer()
        span = tracer.start("constraints.evaluate") \
            if tracer.enabled else None
        source = parse_xsd(spec.source_xsd, name=spec.source_name or None)
        target = parse_xsd(spec.target_xsd, name=spec.target_name or None)
        evidence = MatchEvidence.from_payload(
            record.result, source_tree=source, target_tree=target
        )
        report = evaluate_constraint(constraint, evidence)
        record.constraint_report = report.as_dict()
        tracer.finish(span, attributes={"passed": report.passed})
        with self._stats_lock:
            self.stats.count("constraints.evaluated")
            self.stats.count(
                "constraints.passed" if report.passed else "constraints.failed"
            )
        self.log.event(
            "constraint.evaluated", job_id=record.job_id,
            label=spec.label, passed=report.passed, blame=report.blame,
        )
        if self.metrics is not None:
            self.metrics.counter(
                "constraints_evaluated",
                "Constraint reports evaluated against match results.",
            ).inc()
            self.metrics.counter(
                "constraints_passed" if report.passed else "constraints_failed",
                "Constraint verdicts by outcome.",
            ).inc()

    def _observe_job(self, record: JobRecord, state: str, elapsed: float,
                     error: Optional[str] = None):
        """One terminal-job observation: a log event + metric samples."""
        fields = {
            "job_id": record.job_id, "label": record.spec.label,
            "state": state, "attempts": record.attempts,
            "elapsed_seconds": round(elapsed, 6),
        }
        if error is not None:
            fields["error"] = error
        self.log.event(
            "job.done" if state in ("done", "cached") else "job.failed",
            **fields,
        )
        if self.metrics is not None:
            self.metrics.counter(
                "service_jobs_total", "Match jobs by terminal state.",
                {"state": state},
            ).inc()
            if state != "cached":
                self.metrics.histogram(
                    "service_job_seconds",
                    "Wall time of executed match job attempts.",
                ).observe(elapsed)

    def _run_attempts(self, record: JobRecord, queue: JobQueue,
                      key: Optional[str]):
        spec = record.spec
        timeout = spec.timeout if spec.timeout is not None else self.timeout
        last_error = {"type": "Unknown", "message": "job never ran"}
        timed_out = False
        elapsed = 0.0
        tracer = current_tracer()
        for attempt in range(self.retries + 1):
            if attempt and self.retry_backoff:
                time.sleep(self.retry_backoff * (2 ** (attempt - 1)))
            queue.mark_running(record)
            started = time.perf_counter()
            attempt_span = tracer.start(
                "job.attempt", {"attempt": attempt + 1},
            ) if tracer.enabled else None
            outcome, value = self._execute(spec, timeout)
            tracer.finish(
                attempt_span,
                status="OK" if outcome == "ok" else "ERROR",
                attributes={"outcome": outcome},
            )
            elapsed = time.perf_counter() - started
            if outcome == "ok":
                payload = value["result"]
                trace = value.get("trace")
                with self._stats_lock:
                    self.stats.merge(
                        EngineStats.from_dict(value.get("stats", {}))
                    )
                    self.stats.count("jobs.executed")
                    if trace is not None:
                        self.traces[record.job_id] = trace
                if self.store is not None and key is not None:
                    self.store.put(key, payload)
                queue.mark_done(record, payload, elapsed=value["elapsed"])
                self._observe_job(record, "done", value["elapsed"])
                return
            timed_out = outcome == "timeout"
            last_error = value
            with self._stats_lock:
                self.stats.count(
                    "jobs.timeouts" if timed_out else "jobs.errors"
                )
        queue.mark_failed(
            record, last_error, timed_out=timed_out, elapsed=elapsed
        )
        self._observe_job(
            record, "timed-out" if timed_out else "failed", elapsed,
            error=last_error.get("message"),
        )

    # ------------------------------------------------------------------
    # One attempt (backend-specific)
    # ------------------------------------------------------------------

    def _execute(self, spec: MatchJobSpec, timeout: Optional[float]):
        """One attempt.  Returns ``("ok", envelope)``,
        ``("timeout", error)`` or ``("error", error)``."""
        raise NotImplementedError


class BatchRunner(JobExecutionCore):
    """Run many match jobs over a bounded pool of worker processes.

    The fork-per-job backend: every attempt gets a fresh child process
    (or runs inline with ``inline=True``).  Simple, perfectly isolated,
    and the right trade for batch workloads; the per-request fork cost
    is what :class:`~repro.service.pool.WorkerPool` exists to remove.
    """

    def __init__(self, workers: int = 1,
                 store: Optional[ResultStore] = None,
                 timeout: Optional[float] = DEFAULT_TIMEOUT,
                 retries: int = 1,
                 retry_backoff: float = 0.1,
                 inline: bool = False,
                 worker: Callable[[MatchJobSpec], dict] = execute_job,
                 mp_context=None,
                 log=NULL_LOGGER,
                 metrics=None,
                 constraint=None):
        """``worker`` is the job body -- injectable so tests can
        simulate crashes and hangs; the rest is
        :class:`JobExecutionCore`'s contract."""
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        super().__init__(
            store=store, timeout=timeout, retries=retries,
            retry_backoff=retry_backoff, log=log, metrics=metrics,
            constraint=constraint,
        )
        self.workers = workers
        self.inline = inline
        self.worker = worker
        if mp_context is None and not inline:
            methods = multiprocessing.get_all_start_methods()
            # fork keeps per-job process cost near-zero (the parsed
            # library is inherited); fall back to the default context
            # elsewhere.
            mp_context = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
        self._mp = mp_context

    # ------------------------------------------------------------------
    # Batch entry point
    # ------------------------------------------------------------------

    def run(self, specs: Iterable[MatchJobSpec],
            queue: Optional[JobQueue] = None) -> BatchReport:
        """Run every spec; returns the report in submission order."""
        queue = queue if queue is not None else JobQueue()
        records = queue.submit_all(specs)
        self.log.event(
            "batch.start", jobs=len(records), workers=self.workers,
            inline=self.inline,
        )
        started = time.perf_counter()
        if self.workers == 1:
            for record in records:
                self.run_record(record, queue)
        else:
            with ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="qmatch-batch",
            ) as pool:
                futures = [
                    pool.submit(self.run_record, record, queue)
                    for record in records
                ]
                for future in futures:
                    future.result()
        report = BatchReport(
            records=records,
            workers=self.workers,
            wall_seconds=time.perf_counter() - started,
            stats=self.stats,
            traces={
                record.job_id: self.traces[record.job_id]
                for record in records if record.job_id in self.traces
            },
        )
        self.log.event(
            "batch.done", wall_seconds=round(report.wall_seconds, 6),
            jobs=len(records), counts=report.counts,
            cache_hits=report.cache_hits,
        )
        return report

    # ------------------------------------------------------------------
    # One attempt
    # ------------------------------------------------------------------

    def _execute(self, spec: MatchJobSpec,
                 timeout: Optional[float]):
        """One attempt.  Returns ``("ok", envelope)``,
        ``("timeout", error)`` or ``("error", error)``."""
        if self.inline:
            return self._execute_inline(spec)
        return self._execute_process(spec, timeout)

    def _execute_inline(self, spec: MatchJobSpec):
        try:
            return "ok", self.worker(spec)
        except Exception as exc:  # noqa: BLE001 -- job boundary
            return "error", {
                "type": type(exc).__name__, "message": str(exc),
            }

    def _execute_process(self, spec: MatchJobSpec,
                         timeout: Optional[float]):
        tracer = current_tracer()
        worker = self.worker
        span = None
        if tracer.enabled:
            span = tracer.start("fork.execute")
            worker = _SpanWorker(
                self.worker, tracer.propagation_context(span),
                current_request_id(),
            )
        parent_conn, child_conn = self._mp.Pipe(duplex=False)
        process = self._mp.Process(
            target=_process_entry,
            args=(child_conn, worker, spec),
            daemon=True,
        )
        process.start()
        # Close our copy of the child end so EOF propagates if the
        # child dies without sending.
        child_conn.close()
        try:
            # Wait on the pipe, not the process: a large payload blocks
            # the child's send until we read it, so joining first would
            # deadlock into a spurious timeout.
            if not parent_conn.poll(timeout):
                self._kill(process)
                tracer.finish(span, status="ERROR",
                              attributes={"error.type": "JobTimeout"})
                return "timeout", {
                    "type": "JobTimeout",
                    "message": f"job exceeded its {timeout:g}s deadline",
                }
            try:
                message = parent_conn.recv()
            except (EOFError, OSError):
                message = None
        finally:
            parent_conn.close()
        process.join(5)
        if process.is_alive():
            self._kill(process)
        if message is None:
            tracer.finish(span, status="ERROR",
                          attributes={"error.type": "WorkerCrash"})
            return "error", {
                "type": "WorkerCrash",
                "message": (
                    "worker process died without a result "
                    f"(exit code {process.exitcode})"
                ),
            }
        if message["ok"]:
            value = message["value"]
            if span is not None and isinstance(value, dict):
                # Pop the side channel before the envelope's payload is
                # stored or served: result bytes never carry spans.
                tracer.adopt(value.pop("spans", None), anchor=span)
            tracer.finish(span)
            return "ok", value
        tracer.finish(span, status="ERROR", attributes={
            "error.type": message["error"].get("type", "Error"),
        })
        return "error", message["error"]

    @staticmethod
    def _kill(process):
        process.terminate()
        process.join(5)
        if process.is_alive():
            process.kill()
            process.join(5)


def run_batch(specs: Sequence[MatchJobSpec], workers: int = 1,
              cache_dir=None, **kwargs) -> BatchReport:
    """Convenience one-call batch: build the store and runner, run."""
    store = ResultStore(cache_dir) if cache_dir is not None else None
    runner = BatchRunner(workers=workers, store=store, **kwargs)
    return runner.run(specs)
