"""Batch-manifest parsing for ``qmatch batch``.

A manifest is a JSON file describing a corpus of match jobs::

    {
      "defaults": {"algorithm": "qmatch", "threshold": 0.5},
      "pairs": [
        {"source": "schemas/po1.xsd", "target": "schemas/po2.xsd"},
        {"source": "builtin:Article", "target": "builtin:Book",
         "algorithm": "cupid", "label": "books"},
        {"source": "a.xsd", "target": "b.xsd",
         "weights": "0.3,0.2,0.1,0.4", "strategy": "stable",
         "timeout": 30}
      ]
    }

``defaults`` applies to every pair unless the pair overrides it.
Schema references are either file paths (resolved relative to the
manifest) or ``builtin:<Name>`` for the bundled paper schemas of
:mod:`repro.datasets.registry` -- which is how the evaluation corpus is
batch-matched without exporting files first.

Every schema is parsed once at load time and re-serialized to canonical
XSD text, so job specs are self-contained (safe to ship to worker
processes) and content hashes are format-independent.  All parameter
validation goes through :mod:`repro.service.validation` -- the same
helpers the CLI flags use -- and problems raise
:class:`~repro.service.validation.ValidationError` naming the offending
pair.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.service.jobs import MatchJobSpec
from repro.service.validation import (
    ValidationError,
    validate_algorithm,
    validate_positive,
    validate_threshold,
    validate_weights,
)

#: Prefix selecting a bundled schema from the dataset registry.
BUILTIN_PREFIX = "builtin:"

#: Keys a manifest pair entry (or ``defaults``) may carry.
_PAIR_KEYS = frozenset((
    "source", "target", "algorithm", "threshold", "strategy", "weights",
    "timeout", "label",
))
_DEFAULTABLE_KEYS = frozenset(
    ("algorithm", "threshold", "strategy", "weights", "timeout")
)


def _load_schema_text(ref: str, base_dir: Path) -> tuple[str, str]:
    """Resolve one schema reference to (canonical XSD text, name)."""
    from repro.xsd.serializer import to_xsd

    if ref.startswith(BUILTIN_PREFIX):
        from repro.datasets import registry

        name = ref[len(BUILTIN_PREFIX):]
        try:
            tree = registry.load_schema(name)
        except KeyError as exc:
            raise ValidationError(str(exc)) from None
        return to_xsd(tree), tree.name
    from repro.xsd.parser import parse_xsd_file

    path = Path(ref)
    if not path.is_absolute():
        path = base_dir / path
    tree = parse_xsd_file(path)
    return to_xsd(tree), tree.name


def _build_spec(entry: dict, defaults: dict, base_dir: Path,
                index: int) -> MatchJobSpec:
    if not isinstance(entry, dict):
        raise ValidationError(f"pair #{index} must be an object, got {entry!r}")
    unknown = set(entry) - _PAIR_KEYS
    if unknown:
        raise ValidationError(
            f"pair #{index} has unknown keys {sorted(unknown)}; "
            f"expected a subset of {sorted(_PAIR_KEYS)}"
        )
    merged = dict(defaults)
    merged.update(entry)
    for required in ("source", "target"):
        if not merged.get(required):
            raise ValidationError(f"pair #{index} is missing {required!r}")
    algorithm = validate_algorithm(merged.get("algorithm", "qmatch"))
    threshold = validate_threshold(merged.get("threshold", 0.5))
    weights = validate_weights(merged.get("weights"))
    if weights is not None and algorithm != "qmatch":
        raise ValidationError(
            f"pair #{index}: weights only apply to the qmatch algorithm, "
            f"not {algorithm!r}"
        )
    timeout = validate_positive(
        merged.get("timeout"), "timeout", allow_none=True
    )
    source_xsd, source_name = _load_schema_text(merged["source"], base_dir)
    target_xsd, target_name = _load_schema_text(merged["target"], base_dir)
    return MatchJobSpec(
        source_xsd=source_xsd,
        target_xsd=target_xsd,
        algorithm=algorithm,
        threshold=threshold,
        strategy=merged.get("strategy"),
        weights=weights.as_tuple() if weights is not None else None,
        timeout=timeout,
        label=str(merged.get("label", "")),
        source_name=source_name,
        target_name=target_name,
    )


def parse_manifest(data: dict, base_dir: Union[str, Path] = ".",
                   ) -> list[MatchJobSpec]:
    """Turn a parsed manifest dict into job specs (validated)."""
    if not isinstance(data, dict) or "pairs" not in data:
        raise ValidationError(
            'manifest must be a JSON object with a "pairs" array'
        )
    pairs = data["pairs"]
    if not isinstance(pairs, list) or not pairs:
        raise ValidationError('manifest "pairs" must be a non-empty array')
    defaults = data.get("defaults", {})
    if not isinstance(defaults, dict):
        raise ValidationError('manifest "defaults" must be an object')
    unknown = set(defaults) - _DEFAULTABLE_KEYS
    if unknown:
        raise ValidationError(
            f"manifest defaults has unknown keys {sorted(unknown)}; "
            f"expected a subset of {sorted(_DEFAULTABLE_KEYS)}"
        )
    base_dir = Path(base_dir)
    specs = []
    for index, entry in enumerate(pairs):
        try:
            specs.append(_build_spec(entry, defaults, base_dir, index))
        except ValidationError:
            raise
        except Exception as exc:  # schema file problems, parse errors
            raise ValidationError(f"pair #{index}: {exc}") from exc
    return specs


def load_manifest(path: Union[str, Path],
                  base_dir: Optional[Union[str, Path]] = None,
                  ) -> list[MatchJobSpec]:
    """Load and validate a manifest file into job specs.

    Relative schema paths resolve against the manifest's directory
    unless ``base_dir`` overrides that.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ValidationError(f"manifest not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ValidationError(f"manifest {path} is not valid JSON: {exc}") from None
    return parse_manifest(data, base_dir if base_dir is not None else path.parent)
