"""The embeddable match service and its threaded HTTP front-end.

:class:`MatchService` is the core: submit a schema pair, poll the job,
fetch the result.  Jobs run through the same per-job state machine as
the batch runner (:class:`~repro.service.runner.JobExecutionCore`), so
cache behaviour, retry semantics and error records are identical
whether a pair arrives via a manifest or via HTTP.  Three execution
modes share that state machine:

- ``inline``   -- on the service thread itself; lowest latency, no
  hard timeouts (embedded default);
- ``isolated`` -- one forked worker process per attempt; real
  deadlines and crash containment at ~ms fork cost per job;
- ``pool``     -- a persistent pre-warmed
  :class:`~repro.service.pool.WorkerPool`; deadline + crash
  containment of ``isolated`` without the per-job fork, parse or
  thesaurus-load cost (the ``qmatch serve`` default).

The HTTP API itself lives in :mod:`repro.service.http_api`; the
:class:`MatchRequestHandler` here is the threaded transport for it
(embedded/test use), and :mod:`repro.service.aserver` is the asyncio
transport ``qmatch serve`` runs.  Endpoints::

    GET  /healthz            -- liveness
    GET  /stats              -- job counts + store hit rates + engine stats
    GET  /jobs               -- job records, paginated (?offset=&limit=)
    POST /jobs               -- submit {source_xsd, target_xsd, ...};
                                202 with the job id
    GET  /jobs/<id>          -- one job's status record
    GET  /jobs/<id>/result   -- the stored result payload (409 until done)
    POST /match              -- synchronous convenience: submit and wait
    POST /search             -- top-k corpus search (needs --corpus)

POST bodies are JSON: ``source_xsd`` / ``target_xsd`` carry XSD text,
plus optional ``algorithm``, ``threshold``, ``strategy``, ``weights``
(four numbers or a "L,P,H,C" string) and ``timeout``.  ``/search``
takes ``query_xsd`` plus optional ``k``, ``candidates``, ``rerank``.
Validation errors return 400 with the same message the CLI would
print; saturation returns 429 with ``Retry-After``; oversized bodies
return 413; a draining service answers 503 to new work.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.obs.log import NULL_LOGGER, EventLogger
from repro.obs.metrics import (
    MetricsRegistry,
    corpus_index_metrics,
    engine_stats_metrics,
    pool_depth_metrics,
)
from repro.obs.slo import default_slos, evaluate_slos, slo_metrics
from repro.obs.spans import RequestTracing
from repro.service.http_api import (
    ServiceDraining,
    ServiceSaturated,
    finish_request,
    handle_api_request,
    open_request,
    stamp_request_id,
    too_large_response,
)
from repro.service.jobs import JobQueue, JobRecord, MatchJobSpec
from repro.service.pool import WorkerPool, _StatelessBody, execute_job_resident
from repro.service.runner import DEFAULT_TIMEOUT, BatchRunner, execute_job
from repro.service.store import ResultStore
from repro.service.validation import (
    ValidationError,
    validate_algorithm,
    validate_positive,
    validate_search_budget,
    validate_threshold,
    validate_weights,
)

#: Default request-body cap: plenty for any pair of real-world XSDs,
#: small enough that a misbehaving client cannot balloon the process.
DEFAULT_MAX_BODY = 10 * 1024 * 1024

#: Execution modes (``fork`` is accepted as an alias of ``isolated``).
SERVICE_MODES = ("inline", "isolated", "pool")


class MatchService:
    """Queue + execution backend + result store behind a submit/poll API."""

    def __init__(self, workers: int = 2,
                 store: Optional[ResultStore] = None,
                 timeout: Optional[float] = None,
                 retries: int = 0,
                 isolate: bool = False,
                 mode: Optional[str] = None,
                 searcher=None,
                 worker=None,
                 corpus_dir=None,
                 cache_dir=None,
                 scorer: str = "cosine",
                 segmented: bool = False,
                 shards: Optional[int] = None,
                 max_pending: Optional[int] = None,
                 max_body_bytes: int = DEFAULT_MAX_BODY,
                 max_jobs: Optional[int] = None,
                 trace_sample: float = 0.0,
                 trace_seed: int = 0,
                 trace_export=None,
                 trace_capacity: int = 512,
                 slos=None,
                 log=NULL_LOGGER):
        # ``mode`` picks the execution backend (see the module
        # docstring); the older ``isolate`` flag keeps working for
        # embedded callers and maps onto inline/isolated.  ``worker``
        # is the job body, injectable for tests -- a plain ``(spec) ->
        # envelope`` callable in every mode (the pool wraps it).
        if mode is None:
            mode = "isolated" if isolate else "inline"
        if mode == "fork":
            mode = "isolated"
        if mode not in SERVICE_MODES:
            raise ValidationError(
                f"invalid mode {mode!r}: expected one of "
                f"{', '.join(SERVICE_MODES)}"
            )
        if max_pending is not None and max_pending < 1:
            raise ValidationError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if max_body_bytes < 1:
            raise ValidationError(
                f"max_body_bytes must be >= 1, got {max_body_bytes}"
            )
        self.mode = mode
        self.isolate = mode == "isolated"
        self.log = log
        #: Long-lived HTTP/job/pool metrics (the engine side is
        #: projected in fresh per scrape -- see :meth:`metrics_text`).
        self.metrics = MetricsRegistry()
        self.started_at = time.time()
        self.max_pending = max_pending
        self.max_body_bytes = max_body_bytes
        self.draining = False
        #: Request-scoped span tracing (None = every request untraced;
        #: the transports then run on the NULL tracer guard).
        self.tracing = None
        if trace_sample and float(trace_sample) > 0.0:
            self.tracing = RequestTracing(
                float(trace_sample), seed=trace_seed,
                export_path=trace_export, capacity=trace_capacity,
            )
        #: Service-level objectives evaluated on demand over the
        #: long-lived request metrics (``/slo`` and ``qmatch_slo_*``).
        self.slos = list(slos) if slos is not None else default_slos()
        if timeout is None and mode != "inline":
            timeout = DEFAULT_TIMEOUT
        if mode == "pool":
            self.runner = WorkerPool(
                workers=workers, store=store, timeout=timeout,
                retries=retries, retry_backoff=0.05,
                worker=(
                    execute_job_resident if worker is None
                    else _StatelessBody(worker)
                ),
                corpus_dir=corpus_dir, cache_dir=cache_dir, scorer=scorer,
                segmented=segmented, shards=shards, log=log,
                metrics=self.metrics,
            )
        else:
            self.runner = BatchRunner(
                workers=1, store=store, timeout=timeout, retries=retries,
                retry_backoff=0.05, inline=(mode == "inline"),
                worker=worker if worker is not None else execute_job,
                log=log, metrics=self.metrics,
            )
        self.queue = JobQueue(max_records=max_jobs)
        self.workers = workers
        #: Optional :class:`~repro.corpus.search.CorpusSearcher` behind
        #: ``POST /search``; in pool mode the search usually runs on a
        #: worker's *resident* searcher instead (see
        #: :meth:`search_from_request`).
        self.searcher = searcher
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="qmatch-serve"
        )

    @property
    def store(self) -> Optional[ResultStore]:
        return self.runner.store

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def check_admission(self):
        """Gate job-submitting routes: drain beats saturation.

        Raises :class:`ServiceDraining` once :meth:`drain` started and
        :class:`ServiceSaturated` when pending+running jobs reached
        ``max_pending`` -- the transport turns those into 503 and
        429 + ``Retry-After`` respectively, *before* the request body
        is validated (a saturated service should not spend CPU parsing
        schemas it will reject).
        """
        if self.draining:
            raise ServiceDraining()
        if self.max_pending is None:
            return
        active = self.queue.active
        if active >= self.max_pending:
            raise ServiceSaturated(
                f"service is saturated: {active} jobs pending or running "
                f"(limit {self.max_pending}); retry later",
                retry_after=1,
            )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def spec_from_request(self, body: dict) -> MatchJobSpec:
        """Validate a POST body into a job spec (raises ValidationError)."""
        if not isinstance(body, dict):
            raise ValidationError("request body must be a JSON object")
        source_xsd = body.get("source_xsd")
        target_xsd = body.get("target_xsd")
        if not source_xsd or not target_xsd:
            raise ValidationError(
                "request must carry non-empty source_xsd and target_xsd"
            )
        from repro.xsd.parser import parse_xsd
        from repro.xsd.serializer import to_xsd

        try:
            source = parse_xsd(source_xsd)
            target = parse_xsd(target_xsd)
        except Exception as exc:
            raise ValidationError(f"unparseable schema: {exc}") from exc
        algorithm = validate_algorithm(body.get("algorithm", "qmatch"))
        weights = validate_weights(body.get("weights"))
        if weights is not None and algorithm != "qmatch":
            raise ValidationError(
                "weights only apply to the qmatch algorithm"
            )
        trace = body.get("trace", False)
        if not isinstance(trace, bool):
            raise ValidationError(
                f"invalid trace {trace!r}: expected true or false"
            )
        return MatchJobSpec(
            source_xsd=to_xsd(source),
            target_xsd=to_xsd(target),
            algorithm=algorithm,
            threshold=validate_threshold(body.get("threshold", 0.5)),
            strategy=body.get("strategy"),
            weights=weights.as_tuple() if weights is not None else None,
            timeout=validate_positive(
                body.get("timeout"), "timeout", allow_none=True
            ),
            trace=trace,
            label=str(body.get("label", "")),
            source_name=source.name,
            target_name=target.name,
        )

    def constraint_from_request(self, body: dict):
        """Parse the optional inline ``constraints`` object of a POST body.

        Returns a parsed :class:`repro.constraints.Constraint` or
        ``None``; malformed documents become 400s (``include`` is
        rejected outright -- inline requests may not touch the server's
        filesystem).
        """
        if not isinstance(body, dict) or body.get("constraints") is None:
            return None
        from repro.constraints import ConstraintError, parse_constraint

        try:
            return parse_constraint(body["constraints"])
        except ConstraintError as exc:
            raise ValidationError(f"invalid constraints: {exc}") from None

    def submit(self, spec: MatchJobSpec, constraint=None) -> JobRecord:
        """Enqueue a job; it runs on the background dispatcher pool."""
        record = self.queue.submit(spec)
        record.constraint = constraint
        self._pool.submit(self.runner.run_record, record, self.queue)
        return record

    def run_sync(self, spec: MatchJobSpec, constraint=None) -> JobRecord:
        """Submit and wait (the POST /match convenience path)."""
        record = self.queue.submit(spec)
        record.constraint = constraint
        self.runner.run_record(record, self.queue)
        return record

    # ------------------------------------------------------------------
    # Corpus search
    # ------------------------------------------------------------------

    def search_from_request(self, body: dict) -> dict:
        """Validate a POST /search body and run the two-stage search.

        In pool mode with a corpus configured, the search is dispatched
        to a worker's resident searcher (corpus + indexes stay loaded
        across requests); otherwise the service's own searcher answers.
        Validation -- including the query parse -- always happens here,
        so malformed requests are 400s in every mode.
        """
        pool_search = (
            self.mode == "pool" and getattr(self.runner, "has_corpus", False)
        )
        if self.searcher is None and not pool_search:
            raise ValidationError(
                "no corpus configured; start the service with "
                "qmatch serve --corpus DIR"
            )
        if not isinstance(body, dict):
            raise ValidationError("request body must be a JSON object")
        query_xsd = body.get("query_xsd")
        if not query_xsd:
            raise ValidationError("request must carry non-empty query_xsd")
        from repro.xsd.parser import parse_xsd

        try:
            query = parse_xsd(query_xsd)
        except Exception as exc:
            raise ValidationError(f"unparseable query schema: {exc}") from exc
        k, candidates = validate_search_budget(
            body.get("k", 10), body.get("candidates")
        )
        rerank = body.get("rerank", True)
        if not isinstance(rerank, bool):
            raise ValidationError(
                f"invalid rerank {rerank!r}: expected true or false"
            )
        constraint = self.constraint_from_request(body)
        if constraint is not None and not rerank:
            raise ValidationError(
                "constraints need rerank evidence; drop rerank=false "
                "or the constraints object"
            )
        if pool_search:
            payload = self.runner.search({
                "query_xsd": query_xsd,
                "k": k,
                "candidates": candidates,
                "rerank": rerank,
                # The raw (already validated) document: the worker
                # re-parses it, keeping the pipe protocol plain data.
                "constraints": (
                    body["constraints"] if constraint is not None else None
                ),
            })
        else:
            result = self.searcher.search(
                query, k=k, candidates=candidates, rerank=rerank,
                constraint=constraint,
            )
            payload = result.as_dict()
        self._observe_search_constraints(payload)
        return payload

    def _observe_search_constraints(self, payload: dict):
        """Fold a search's constraint counters into the service metrics.

        Counter updates come from the result payload, not live searcher
        state, so pool-mode searches (evaluated inside a worker process)
        are counted exactly like inline ones.
        """
        counters = payload.get("constraints")
        if not counters:
            return
        self.metrics.counter(
            "constraints_evaluated",
            "Constraint reports evaluated against match results.",
        ).inc(int(counters.get("evaluated", 0)))
        self.metrics.counter(
            "constraints_passed", "Constraint verdicts by outcome.",
        ).inc(int(counters.get("admitted", 0)))
        self.metrics.counter(
            "constraints_failed", "Constraint verdicts by outcome.",
        ).inc(int(counters.get("filtered", 0)))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def trace_for(self, job_id: str) -> Optional[dict]:
        """The collected trace snapshot of one traced, finished job."""
        return self.runner.traces.get(job_id)

    def record_request(self, method: str, route: str, status: int,
                       elapsed: float):
        """One request's samples in the long-lived metrics registry."""
        self.metrics.counter(
            "http_requests_total",
            "HTTP requests by method, route and status.",
            {"method": method, "route": route, "status": str(status)},
        ).inc()
        self.metrics.histogram(
            "http_request_seconds",
            "HTTP request latency by route.",
            {"route": route},
        ).observe(elapsed)

    def metrics_text(self) -> str:
        """The ``GET /metrics`` body: Prometheus text format 0.0.4.

        A fresh snapshot registry per scrape: the long-lived HTTP/job
        samples are merged in, the engine stats are projected (absolute
        totals -- never folded into a long-lived registry), pool depth
        gauges are refreshed, and the uptime gauge is set last.
        """
        snapshot = MetricsRegistry()
        snapshot.merge(self.metrics)
        engine_stats_metrics(self.runner.stats, registry=snapshot)
        if self.mode == "pool":
            pool_depth_metrics(
                snapshot,
                size=self.runner.size,
                idle=self.runner.idle_count,
                respawns=self.runner.respawns,
            )
        if self.searcher is not None:
            corpus_index_metrics(snapshot, self.searcher.index.info())
        if self.slos:
            slo_metrics(snapshot, evaluate_slos(self.slos, self.metrics))
        snapshot.gauge(
            "service_uptime_seconds",
            "Seconds since the service started.",
        ).set(time.time() - self.started_at)
        return snapshot.render()

    def slo_snapshot(self) -> dict:
        """The ``GET /slo`` body: every objective's budget arithmetic."""
        return {
            "window": "since-start",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "objectives": evaluate_slos(self.slos, self.metrics),
        }

    def stats_snapshot(self) -> dict:
        store = self.store
        searcher = self.searcher
        routes = {
            route: int(total)
            for route, total in sorted(
                self.metrics.sum_by("http_requests_total", "route").items()
            )
        }
        snapshot = {
            "workers": self.workers,
            "mode": self.mode,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "admission": {
                "max_pending": self.max_pending,
                "active": self.queue.active,
                "draining": self.draining,
            },
            "limits": {
                "max_body_bytes": self.max_body_bytes,
                "max_jobs": self.queue.max_records,
            },
            "routes": routes,
            "corpus": None if searcher is None else {
                "root": str(searcher.corpus.root),
                "entries": len(searcher.corpus),
                "indexed": searcher.index.document_count,
            },
            "jobs": self.queue.counts(),
            "store": None if store is None else {
                "root": str(store.root),
                "entries": len(store),
                "hits": store.hits,
                "misses": store.misses,
                "hit_rate": store.hit_rate,
            },
            "engine": self.runner.stats.as_dict(),
        }
        if self.mode == "pool":
            snapshot["pool"] = {
                "size": self.runner.size,
                "idle": self.runner.idle_count,
                "respawns": self.runner.respawns,
                "corpus_resident": self.runner.has_corpus,
            }
        return snapshot

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: refuse new work, let in-flight jobs finish.

        Returns True when every admitted job reached a terminal state
        before ``timeout`` (None = wait indefinitely).  Read-only
        routes keep answering during the drain, so clients can still
        poll results of jobs admitted before it started.
        """
        self.draining = True
        self.log.event(
            "serve.drain", active=self.queue.active,
            timeout=timeout,
        )
        deadline = (
            None if timeout is None else time.monotonic() + float(timeout)
        )
        while self.queue.active:
            if deadline is not None and time.monotonic() >= deadline:
                break
            time.sleep(0.02)
        drained = self.queue.active == 0
        self.shutdown(wait=drained)
        return drained

    def shutdown(self, wait: bool = True):
        self._pool.shutdown(wait=wait)
        if isinstance(self.runner, WorkerPool):
            self.runner.shutdown(wait=wait)


class MatchRequestHandler(BaseHTTPRequestHandler):
    """Threaded transport for the shared HTTP API router.

    Reads bytes off the socket (enforcing the service's body cap
    *before* buffering) and writes back whatever
    :func:`~repro.service.http_api.handle_api_request` returns; all
    routing, status codes and metrics live in the router, shared with
    the asyncio front-end.
    """

    server_version = "qmatch-serve/1.0"
    protocol_version = "HTTP/1.1"
    #: Set True (e.g. by the CLI) to log requests to stderr.
    verbose = False

    @property
    def service(self) -> MatchService:
        return self.server.service

    def log_message(self, format, *args):  # noqa: A002 -- stdlib signature
        if self.verbose:
            super().log_message(format, *args)

    def do_GET(self):  # noqa: N802 -- stdlib naming
        self._handle("GET")

    def do_POST(self):  # noqa: N802 -- stdlib naming
        self._handle("POST")

    def _handle(self, method: str):
        started = time.perf_counter()
        tracer, request_id = open_request(
            self.service,
            {name.lower(): value for name, value in self.headers.items()},
        )
        root = tracer.start("http.request", {
            "method": method, "path": self.path.partition("?")[0],
            "transport": "threaded",
        }) if tracer.enabled else None
        raw = None
        if method == "POST":
            length = int(self.headers.get("Content-Length") or 0)
            if length > self.service.max_body_bytes:
                response = too_large_response(
                    self.service, method, self.path, length, started,
                )
                stamp_request_id(response, request_id)
                if root is not None:
                    tracer.finish(root, status="ERROR",
                                  attributes={"status": 413})
                    finish_request(self.service, tracer)
                return self._send_api_response(response)
            raw = self.rfile.read(length) if length > 0 else b""
        response = handle_api_request(
            self.service, method, self.path, raw, started,
            tracer=tracer, request_id=request_id,
        )
        write_span = tracer.start("response.write") \
            if tracer.enabled else None
        self._send_api_response(response)
        if root is not None:
            tracer.finish(write_span,
                          attributes={"bytes": len(response.body)})
            tracer.finish(root, attributes={
                "status": response.status, "route": response.route,
            })
            finish_request(self.service, tracer)

    def _send_api_response(self, response):
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers:
            self.send_header(name, value)
        if response.close:
            # An oversized body was never read off the socket; the
            # connection cannot be reused.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(response.body)


def create_server(service: MatchService, host: str = "127.0.0.1",
                  port: int = 8765) -> ThreadingHTTPServer:
    """Bind a threading HTTP server around ``service`` (port 0 = ephemeral)."""
    server = ThreadingHTTPServer((host, port), MatchRequestHandler)
    server.service = service
    return server


def build_searcher(corpus_dir, cache_dir=None, workers: int = 1,
                   scorer: str = "cosine", log=NULL_LOGGER,
                   segmented: bool = False, shards: Optional[int] = None):
    """Open a corpus directory (with its saved index) as a searcher.

    Shared by ``qmatch serve --corpus``, ``qmatch search`` and the
    worker pool's resident warm-up.  ``segmented`` opens the on-disk
    segment manifest instead of the monolithic ``index.json`` (lazy
    payload loading -- open cost is independent of corpus size), and
    ``shards`` > 1 additionally fans the stage-1 scan over that many
    segment shards.  Raises a clean error when the corpus or its index
    is missing; a *stale* index (corpus content changed since the last
    build) is reported by the caller, not rejected -- search still
    works, it just cannot see the un-indexed schemas.
    """
    from repro.corpus.corpus import CorpusError, SchemaCorpus
    from repro.corpus.indexes import INDEX_NAME, CorpusIndex
    from repro.corpus.search import CorpusSearcher

    corpus = SchemaCorpus(corpus_dir)
    if not len(corpus):
        raise CorpusError(
            f"corpus {str(corpus_dir)!r} is empty; build it with "
            "qmatch index build"
        )
    store = ResultStore(cache_dir) if cache_dir is not None else None
    if segmented:
        from repro.corpus.segments import (
            SEGMENT_MANIFEST_NAME,
            SEGMENTS_DIR,
            SegmentedCorpusIndex,
        )
        from repro.corpus.shard import ShardedCorpusSearcher

        segments_root = corpus.root / SEGMENTS_DIR
        if not (segments_root / SEGMENT_MANIFEST_NAME).exists():
            raise CorpusError(
                f"corpus {str(corpus_dir)!r} has no segmented index; "
                "build it with qmatch index build --segmented"
            )
        index = SegmentedCorpusIndex.open(segments_root, log=log)
        if shards is not None and shards > 1:
            return ShardedCorpusSearcher(
                corpus, index, shards=shards, scorer=scorer,
                workers=workers, store=store, log=log,
            )
        return CorpusSearcher(
            corpus, index, scorer=scorer, workers=workers, store=store,
            log=log,
        )
    index_path = corpus.root / INDEX_NAME
    if not index_path.exists():
        raise CorpusError(
            f"corpus {str(corpus_dir)!r} has no index; build it with "
            "qmatch index build"
        )
    index = CorpusIndex.load(index_path)
    return CorpusSearcher(
        corpus, index, scorer=scorer, workers=workers, store=store, log=log,
    )


def serve(host: str = "127.0.0.1", port: int = 8765, workers: int = 2,
          cache_dir=None, verbose: bool = True, isolate: bool = True,
          mode: Optional[str] = None, timeout=None, retries: int = 1,
          corpus_dir=None, scorer: str = "cosine",
          segmented: bool = False, shards: Optional[int] = None,
          max_pending: Optional[int] = None,
          max_body_bytes: int = DEFAULT_MAX_BODY,
          max_jobs: Optional[int] = None,
          drain_timeout: Optional[float] = 30.0,
          trace_sample: float = 0.0,
          trace_seed: int = 0,
          trace_export=None,
          slos=None,
          log: Optional[EventLogger] = None) -> int:
    """Run the service until interrupted (the ``qmatch serve`` body).

    The listening front-end is the asyncio server in
    :mod:`repro.service.aserver`; this wrapper builds the service
    (store, searcher, execution backend) around it.  Lifecycle output
    is structured: one JSON event record per line on stderr
    (``serve.start``, ``serve.stale_index``, ``serve.drain``,
    ``serve.stop``), all stamped with the same run ID the job/batch
    events carry.
    """
    from repro.service.aserver import run_async_server

    log = log if log is not None else EventLogger()
    store = ResultStore(cache_dir) if cache_dir is not None else None
    searcher = None
    if corpus_dir is not None:
        searcher = build_searcher(
            corpus_dir, cache_dir=cache_dir, scorer=scorer, log=log,
            segmented=segmented, shards=shards,
        )
        if searcher.index.stale_for(searcher.corpus):
            log.event(
                "serve.stale_index",
                corpus=str(corpus_dir),
                message=(
                    "corpus index is stale (corpus content changed since "
                    "the last build); run qmatch index build to refresh"
                ),
            )
    if mode is None:
        mode = "isolated" if isolate else "inline"
    service = MatchService(
        workers=workers, store=store, timeout=timeout, retries=retries,
        mode=mode, searcher=searcher, corpus_dir=corpus_dir,
        cache_dir=cache_dir, scorer=scorer, segmented=segmented,
        shards=shards,
        max_pending=max_pending,
        max_body_bytes=max_body_bytes, max_jobs=max_jobs,
        trace_sample=trace_sample, trace_seed=trace_seed,
        trace_export=trace_export, slos=slos, log=log,
    )
    return run_async_server(
        service, host=host, port=port, verbose=verbose,
        drain_timeout=drain_timeout, log=log,
        start_info={
            "workers": workers,
            "mode": service.mode,
            "cache": str(cache_dir) if cache_dir is not None else None,
            "corpus": str(corpus_dir) if corpus_dir is not None else None,
            "corpus_schemas": (
                len(searcher.corpus) if searcher is not None else None
            ),
            "trace_sample": float(trace_sample) or None,
        },
    )
