"""``qmatch serve``: a stdlib JSON-over-HTTP match service.

:class:`MatchService` is the embeddable core: submit a schema pair,
poll the job, fetch the result.  Jobs run on a background thread pool
through the same per-job state machine as the batch runner
(:meth:`BatchRunner.run_record` in inline mode), so cache behaviour,
retry semantics and error records are identical whether a pair arrives
via a manifest or via HTTP.

:func:`create_server` wraps the service in a
:class:`http.server.ThreadingHTTPServer`.  Endpoints::

    GET  /healthz            -- liveness
    GET  /stats              -- job counts + store hit rates + engine stats
    GET  /jobs               -- every job record (submission order)
    POST /jobs               -- submit {source_xsd, target_xsd, ...};
                                202 with the job id (or 200 on cache hit)
    GET  /jobs/<id>          -- one job's status record
    GET  /jobs/<id>/result   -- the stored result payload (409 until done)
    POST /match              -- synchronous convenience: submit and wait
    POST /search             -- top-k corpus search (needs --corpus)

POST bodies are JSON: ``source_xsd`` / ``target_xsd`` carry XSD text,
plus optional ``algorithm``, ``threshold``, ``strategy``, ``weights``
(four numbers or a "L,P,H,C" string) and ``timeout``.  ``/search``
takes ``query_xsd`` plus optional ``k``, ``candidates``, ``rerank``.
Validation errors return 400 with the same message the CLI would print.

With ``isolate=True`` (the ``qmatch serve`` default) every job attempt
runs in a forked worker process through the batch runner's standard
retry/timeout path, so a hung or crashing match is killed at its
deadline and reported as a structured error instead of wedging a
service thread; ``isolate=False`` keeps the low-latency inline mode
(no hard timeouts) for embedded use.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.service.jobs import JobQueue, JobRecord, JobState, MatchJobSpec
from repro.service.runner import DEFAULT_TIMEOUT, BatchRunner, execute_job
from repro.service.store import ResultStore
from repro.service.validation import (
    ValidationError,
    validate_algorithm,
    validate_positive,
    validate_threshold,
    validate_weights,
)


class MatchService:
    """Queue + worker pool + result store behind a submit/poll API."""

    def __init__(self, workers: int = 2,
                 store: Optional[ResultStore] = None,
                 timeout: Optional[float] = None,
                 retries: int = 0,
                 isolate: bool = False,
                 searcher=None,
                 worker=execute_job):
        # The service's concurrency is a thread pool; each pool thread
        # drives one job at a time through the batch runner's per-job
        # state machine.  ``isolate=False`` (embedded default) executes
        # on the thread itself -- lowest latency, no hard timeouts.
        # ``isolate=True`` (the ``qmatch serve`` default) forks one
        # worker process per attempt, which buys real deadlines and
        # crash containment at ~ms fork cost.  ``worker`` is the job
        # body, injectable for tests.
        self.isolate = isolate
        if timeout is None and isolate:
            timeout = DEFAULT_TIMEOUT
        self.runner = BatchRunner(
            workers=1, store=store, timeout=timeout, retries=retries,
            retry_backoff=0.05, inline=not isolate, worker=worker,
        )
        self.queue = JobQueue()
        self.workers = workers
        #: Optional :class:`~repro.corpus.search.CorpusSearcher` behind
        #: ``POST /search``; ``None`` means no corpus is configured.
        self.searcher = searcher
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="qmatch-serve"
        )

    @property
    def store(self) -> Optional[ResultStore]:
        return self.runner.store

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def spec_from_request(self, body: dict) -> MatchJobSpec:
        """Validate a POST body into a job spec (raises ValidationError)."""
        if not isinstance(body, dict):
            raise ValidationError("request body must be a JSON object")
        source_xsd = body.get("source_xsd")
        target_xsd = body.get("target_xsd")
        if not source_xsd or not target_xsd:
            raise ValidationError(
                "request must carry non-empty source_xsd and target_xsd"
            )
        from repro.xsd.parser import parse_xsd
        from repro.xsd.serializer import to_xsd

        try:
            source = parse_xsd(source_xsd)
            target = parse_xsd(target_xsd)
        except Exception as exc:
            raise ValidationError(f"unparseable schema: {exc}") from exc
        algorithm = validate_algorithm(body.get("algorithm", "qmatch"))
        weights = validate_weights(body.get("weights"))
        if weights is not None and algorithm != "qmatch":
            raise ValidationError(
                "weights only apply to the qmatch algorithm"
            )
        return MatchJobSpec(
            source_xsd=to_xsd(source),
            target_xsd=to_xsd(target),
            algorithm=algorithm,
            threshold=validate_threshold(body.get("threshold", 0.5)),
            strategy=body.get("strategy"),
            weights=weights.as_tuple() if weights is not None else None,
            timeout=validate_positive(
                body.get("timeout"), "timeout", allow_none=True
            ),
            label=str(body.get("label", "")),
            source_name=source.name,
            target_name=target.name,
        )

    def submit(self, spec: MatchJobSpec) -> JobRecord:
        """Enqueue a job; it runs on the background pool."""
        record = self.queue.submit(spec)
        self._pool.submit(self.runner.run_record, record, self.queue)
        return record

    def run_sync(self, spec: MatchJobSpec) -> JobRecord:
        """Submit and wait (the POST /match convenience path)."""
        record = self.queue.submit(spec)
        self.runner.run_record(record, self.queue)
        return record

    # ------------------------------------------------------------------
    # Corpus search
    # ------------------------------------------------------------------

    def search_from_request(self, body: dict) -> dict:
        """Validate a POST /search body and run the two-stage search."""
        if self.searcher is None:
            raise ValidationError(
                "no corpus configured; start the service with "
                "qmatch serve --corpus DIR"
            )
        if not isinstance(body, dict):
            raise ValidationError("request body must be a JSON object")
        query_xsd = body.get("query_xsd")
        if not query_xsd:
            raise ValidationError("request must carry non-empty query_xsd")
        from repro.xsd.parser import parse_xsd

        try:
            query = parse_xsd(query_xsd)
        except Exception as exc:
            raise ValidationError(f"unparseable query schema: {exc}") from exc
        k = validate_positive(body.get("k", 10), "k")
        candidates = validate_positive(
            body.get("candidates"), "candidates", allow_none=True
        )
        rerank = body.get("rerank", True)
        if not isinstance(rerank, bool):
            raise ValidationError(
                f"invalid rerank {rerank!r}: expected true or false"
            )
        result = self.searcher.search(
            query, k=int(k),
            candidates=int(candidates) if candidates is not None else None,
            rerank=rerank,
        )
        return result.as_dict()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats_snapshot(self) -> dict:
        store = self.store
        searcher = self.searcher
        return {
            "workers": self.workers,
            "mode": "isolated" if self.isolate else "inline",
            "corpus": None if searcher is None else {
                "root": str(searcher.corpus.root),
                "entries": len(searcher.corpus),
                "indexed": searcher.index.document_count,
            },
            "jobs": self.queue.counts(),
            "store": None if store is None else {
                "root": str(store.root),
                "entries": len(store),
                "hits": store.hits,
                "misses": store.misses,
                "hit_rate": store.hit_rate,
            },
            "engine": self.runner.stats.as_dict(),
        }

    def shutdown(self):
        self._pool.shutdown(wait=True)


class MatchRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning server's MatchService."""

    server_version = "qmatch-serve/1.0"
    protocol_version = "HTTP/1.1"
    #: Set True (e.g. by the CLI) to log requests to stderr.
    verbose = False

    @property
    def service(self) -> MatchService:
        return self.server.service

    def log_message(self, format, *args):  # noqa: A002 -- stdlib signature
        if self.verbose:
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _send_json(self, status: int, payload: dict):
        body = json.dumps(payload, indent=2).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ValidationError("request body is empty")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValidationError(f"request body is not valid JSON: {exc}") from None

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def do_GET(self):  # noqa: N802 -- stdlib naming
        parts = [part for part in self.path.split("?")[0].split("/") if part]
        if parts == ["healthz"]:
            return self._send_json(200, {"status": "ok"})
        if parts == ["stats"]:
            return self._send_json(200, self.service.stats_snapshot())
        if parts == ["jobs"]:
            return self._send_json(200, {
                "jobs": [
                    record.snapshot()
                    for record in self.service.queue.records()
                ],
            })
        if len(parts) == 2 and parts[0] == "jobs":
            record = self.service.queue.get(parts[1])
            if record is None:
                return self._send_json(404, {"error": f"no job {parts[1]!r}"})
            return self._send_json(200, record.snapshot())
        if len(parts) == 3 and parts[:1] == ["jobs"] and parts[2] == "result":
            record = self.service.queue.get(parts[1])
            if record is None:
                return self._send_json(404, {"error": f"no job {parts[1]!r}"})
            if record.state is not JobState.DONE:
                return self._send_json(409, {
                    "error": f"job {record.job_id} is {record.state.value}",
                    "job": record.snapshot(),
                })
            return self._send_json(200, record.result)
        return self._send_json(404, {"error": f"no route for {self.path!r}"})

    def do_POST(self):  # noqa: N802 -- stdlib naming
        parts = [part for part in self.path.split("?")[0].split("/") if part]
        try:
            if parts == ["jobs"]:
                spec = self.service.spec_from_request(self._read_body())
                record = self.service.submit(spec)
                return self._send_json(202, record.snapshot())
            if parts == ["match"]:
                spec = self.service.spec_from_request(self._read_body())
                record = self.service.run_sync(spec)
                if record.state is JobState.DONE:
                    return self._send_json(
                        200, record.snapshot(include_result=True)
                    )
                return self._send_json(500, record.snapshot())
            if parts == ["search"]:
                payload = self.service.search_from_request(self._read_body())
                return self._send_json(200, payload)
        except ValidationError as exc:
            return self._send_json(400, {"error": str(exc)})
        return self._send_json(404, {"error": f"no route for {self.path!r}"})


def create_server(service: MatchService, host: str = "127.0.0.1",
                  port: int = 8765) -> ThreadingHTTPServer:
    """Bind a threading HTTP server around ``service`` (port 0 = ephemeral)."""
    server = ThreadingHTTPServer((host, port), MatchRequestHandler)
    server.service = service
    return server


def build_searcher(corpus_dir, cache_dir=None, workers: int = 1):
    """Open a corpus directory (with its saved index) as a searcher.

    Shared by ``qmatch serve --corpus`` and ``qmatch search``.  Raises
    a clean error when the corpus or its index is missing; a *stale*
    index (corpus content changed since the last build) is reported by
    the caller, not rejected -- search still works, it just cannot see
    the un-indexed schemas.
    """
    from repro.corpus.corpus import CorpusError, SchemaCorpus
    from repro.corpus.indexes import INDEX_NAME, CorpusIndex
    from repro.corpus.search import CorpusSearcher

    corpus = SchemaCorpus(corpus_dir)
    if not len(corpus):
        raise CorpusError(
            f"corpus {str(corpus_dir)!r} is empty; build it with "
            "qmatch index build"
        )
    index_path = corpus.root / INDEX_NAME
    if not index_path.exists():
        raise CorpusError(
            f"corpus {str(corpus_dir)!r} has no index; build it with "
            "qmatch index build"
        )
    index = CorpusIndex.load(index_path)
    store = ResultStore(cache_dir) if cache_dir is not None else None
    return CorpusSearcher(corpus, index, workers=workers, store=store)


def serve(host: str = "127.0.0.1", port: int = 8765, workers: int = 2,
          cache_dir=None, verbose: bool = True, isolate: bool = True,
          timeout=None, retries: int = 1, corpus_dir=None) -> int:
    """Run the service until interrupted (the ``qmatch serve`` body)."""
    import sys

    store = ResultStore(cache_dir) if cache_dir is not None else None
    searcher = None
    if corpus_dir is not None:
        searcher = build_searcher(corpus_dir, cache_dir=cache_dir)
        if searcher.index.stale_for(searcher.corpus):
            print(
                "qmatch serve: warning: corpus index is stale (corpus "
                "content changed since the last build); run qmatch index "
                "build to refresh",
                file=sys.stderr,
            )
    service = MatchService(
        workers=workers, store=store, timeout=timeout, retries=retries,
        isolate=isolate, searcher=searcher,
    )
    server = create_server(service, host=host, port=port)
    MatchRequestHandler.verbose = verbose
    cache_note = f", cache {cache_dir}" if cache_dir is not None else ""
    corpus_note = (
        f", corpus {corpus_dir} ({len(searcher.corpus)} schemas)"
        if searcher is not None else ""
    )
    mode_note = "isolated" if isolate else "inline"
    print(
        f"qmatch serve: listening on http://{host}:{server.server_address[1]} "
        f"({workers} {mode_note} workers{cache_note}{corpus_note}); "
        "Ctrl-C to stop",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("qmatch serve: shutting down", file=sys.stderr)
    finally:
        server.server_close()
        service.shutdown()
    return 0
