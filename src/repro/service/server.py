"""``qmatch serve``: a stdlib JSON-over-HTTP match service.

:class:`MatchService` is the embeddable core: submit a schema pair,
poll the job, fetch the result.  Jobs run on a background thread pool
through the same per-job state machine as the batch runner
(:meth:`BatchRunner.run_record` in inline mode), so cache behaviour,
retry semantics and error records are identical whether a pair arrives
via a manifest or via HTTP.

:func:`create_server` wraps the service in a
:class:`http.server.ThreadingHTTPServer`.  Endpoints::

    GET  /healthz            -- liveness
    GET  /stats              -- job counts + store hit rates + engine stats
    GET  /jobs               -- every job record (submission order)
    POST /jobs               -- submit {source_xsd, target_xsd, ...};
                                202 with the job id (or 200 on cache hit)
    GET  /jobs/<id>          -- one job's status record
    GET  /jobs/<id>/result   -- the stored result payload (409 until done)
    POST /match              -- synchronous convenience: submit and wait
    POST /search             -- top-k corpus search (needs --corpus)

POST bodies are JSON: ``source_xsd`` / ``target_xsd`` carry XSD text,
plus optional ``algorithm``, ``threshold``, ``strategy``, ``weights``
(four numbers or a "L,P,H,C" string) and ``timeout``.  ``/search``
takes ``query_xsd`` plus optional ``k``, ``candidates``, ``rerank``.
Validation errors return 400 with the same message the CLI would print.

With ``isolate=True`` (the ``qmatch serve`` default) every job attempt
runs in a forked worker process through the batch runner's standard
retry/timeout path, so a hung or crashing match is killed at its
deadline and reported as a structured error instead of wedging a
service thread; ``isolate=False`` keeps the low-latency inline mode
(no hard timeouts) for embedded use.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.obs.log import NULL_LOGGER, EventLogger
from repro.obs.metrics import MetricsRegistry, engine_stats_metrics
from repro.service.jobs import JobQueue, JobRecord, JobState, MatchJobSpec
from repro.service.runner import DEFAULT_TIMEOUT, BatchRunner, execute_job
from repro.service.store import ResultStore
from repro.service.validation import (
    ValidationError,
    validate_algorithm,
    validate_positive,
    validate_threshold,
    validate_weights,
)


class MatchService:
    """Queue + worker pool + result store behind a submit/poll API."""

    def __init__(self, workers: int = 2,
                 store: Optional[ResultStore] = None,
                 timeout: Optional[float] = None,
                 retries: int = 0,
                 isolate: bool = False,
                 searcher=None,
                 worker=execute_job,
                 log=NULL_LOGGER):
        # The service's concurrency is a thread pool; each pool thread
        # drives one job at a time through the batch runner's per-job
        # state machine.  ``isolate=False`` (embedded default) executes
        # on the thread itself -- lowest latency, no hard timeouts.
        # ``isolate=True`` (the ``qmatch serve`` default) forks one
        # worker process per attempt, which buys real deadlines and
        # crash containment at ~ms fork cost.  ``worker`` is the job
        # body, injectable for tests.
        self.isolate = isolate
        self.log = log
        #: Long-lived HTTP/job metrics (the engine side is projected in
        #: fresh per scrape -- see :meth:`metrics_text`).
        self.metrics = MetricsRegistry()
        self.started_at = time.time()
        if timeout is None and isolate:
            timeout = DEFAULT_TIMEOUT
        self.runner = BatchRunner(
            workers=1, store=store, timeout=timeout, retries=retries,
            retry_backoff=0.05, inline=not isolate, worker=worker,
            log=log, metrics=self.metrics,
        )
        self.queue = JobQueue()
        self.workers = workers
        #: Optional :class:`~repro.corpus.search.CorpusSearcher` behind
        #: ``POST /search``; ``None`` means no corpus is configured.
        self.searcher = searcher
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="qmatch-serve"
        )

    @property
    def store(self) -> Optional[ResultStore]:
        return self.runner.store

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def spec_from_request(self, body: dict) -> MatchJobSpec:
        """Validate a POST body into a job spec (raises ValidationError)."""
        if not isinstance(body, dict):
            raise ValidationError("request body must be a JSON object")
        source_xsd = body.get("source_xsd")
        target_xsd = body.get("target_xsd")
        if not source_xsd or not target_xsd:
            raise ValidationError(
                "request must carry non-empty source_xsd and target_xsd"
            )
        from repro.xsd.parser import parse_xsd
        from repro.xsd.serializer import to_xsd

        try:
            source = parse_xsd(source_xsd)
            target = parse_xsd(target_xsd)
        except Exception as exc:
            raise ValidationError(f"unparseable schema: {exc}") from exc
        algorithm = validate_algorithm(body.get("algorithm", "qmatch"))
        weights = validate_weights(body.get("weights"))
        if weights is not None and algorithm != "qmatch":
            raise ValidationError(
                "weights only apply to the qmatch algorithm"
            )
        trace = body.get("trace", False)
        if not isinstance(trace, bool):
            raise ValidationError(
                f"invalid trace {trace!r}: expected true or false"
            )
        return MatchJobSpec(
            source_xsd=to_xsd(source),
            target_xsd=to_xsd(target),
            algorithm=algorithm,
            threshold=validate_threshold(body.get("threshold", 0.5)),
            strategy=body.get("strategy"),
            weights=weights.as_tuple() if weights is not None else None,
            timeout=validate_positive(
                body.get("timeout"), "timeout", allow_none=True
            ),
            trace=trace,
            label=str(body.get("label", "")),
            source_name=source.name,
            target_name=target.name,
        )

    def submit(self, spec: MatchJobSpec) -> JobRecord:
        """Enqueue a job; it runs on the background pool."""
        record = self.queue.submit(spec)
        self._pool.submit(self.runner.run_record, record, self.queue)
        return record

    def run_sync(self, spec: MatchJobSpec) -> JobRecord:
        """Submit and wait (the POST /match convenience path)."""
        record = self.queue.submit(spec)
        self.runner.run_record(record, self.queue)
        return record

    # ------------------------------------------------------------------
    # Corpus search
    # ------------------------------------------------------------------

    def search_from_request(self, body: dict) -> dict:
        """Validate a POST /search body and run the two-stage search."""
        if self.searcher is None:
            raise ValidationError(
                "no corpus configured; start the service with "
                "qmatch serve --corpus DIR"
            )
        if not isinstance(body, dict):
            raise ValidationError("request body must be a JSON object")
        query_xsd = body.get("query_xsd")
        if not query_xsd:
            raise ValidationError("request must carry non-empty query_xsd")
        from repro.xsd.parser import parse_xsd

        try:
            query = parse_xsd(query_xsd)
        except Exception as exc:
            raise ValidationError(f"unparseable query schema: {exc}") from exc
        k = validate_positive(body.get("k", 10), "k")
        candidates = validate_positive(
            body.get("candidates"), "candidates", allow_none=True
        )
        rerank = body.get("rerank", True)
        if not isinstance(rerank, bool):
            raise ValidationError(
                f"invalid rerank {rerank!r}: expected true or false"
            )
        result = self.searcher.search(
            query, k=int(k),
            candidates=int(candidates) if candidates is not None else None,
            rerank=rerank,
        )
        return result.as_dict()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def trace_for(self, job_id: str) -> Optional[dict]:
        """The collected trace snapshot of one traced, finished job."""
        return self.runner.traces.get(job_id)

    def metrics_text(self) -> str:
        """The ``GET /metrics`` body: Prometheus text format 0.0.4.

        A fresh snapshot registry per scrape: the long-lived HTTP/job
        samples are merged in, the engine stats are projected (absolute
        totals -- never folded into a long-lived registry), and the
        uptime gauge is set last.
        """
        snapshot = MetricsRegistry()
        snapshot.merge(self.metrics)
        engine_stats_metrics(self.runner.stats, registry=snapshot)
        snapshot.gauge(
            "service_uptime_seconds",
            "Seconds since the service started.",
        ).set(time.time() - self.started_at)
        return snapshot.render()

    def stats_snapshot(self) -> dict:
        store = self.store
        searcher = self.searcher
        routes = {
            route: int(total)
            for route, total in sorted(
                self.metrics.sum_by("http_requests_total", "route").items()
            )
        }
        return {
            "workers": self.workers,
            "mode": "isolated" if self.isolate else "inline",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "routes": routes,
            "corpus": None if searcher is None else {
                "root": str(searcher.corpus.root),
                "entries": len(searcher.corpus),
                "indexed": searcher.index.document_count,
            },
            "jobs": self.queue.counts(),
            "store": None if store is None else {
                "root": str(store.root),
                "entries": len(store),
                "hits": store.hits,
                "misses": store.misses,
                "hit_rate": store.hit_rate,
            },
            "engine": self.runner.stats.as_dict(),
        }

    def shutdown(self):
        self._pool.shutdown(wait=True)


class MatchRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning server's MatchService."""

    server_version = "qmatch-serve/1.0"
    protocol_version = "HTTP/1.1"
    #: Set True (e.g. by the CLI) to log requests to stderr.
    verbose = False

    @property
    def service(self) -> MatchService:
        return self.server.service

    def log_message(self, format, *args):  # noqa: A002 -- stdlib signature
        if self.verbose:
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _send_json(self, status: int, payload: dict):
        self._status = status
        body = json.dumps(payload, indent=2).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; version=0.0.4"):
        self._status = status
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _record(self, method: str, route: str, status: int,
                elapsed: float):
        """One request's samples in the service's metrics registry."""
        metrics = self.service.metrics
        metrics.counter(
            "http_requests_total",
            "HTTP requests by method, route and status.",
            {"method": method, "route": route, "status": str(status)},
        ).inc()
        metrics.histogram(
            "http_request_seconds",
            "HTTP request latency by route.",
            {"route": route},
        ).observe(elapsed)
        self._recorded = True

    @staticmethod
    def _route_label(parts: list) -> str:
        """Normalized route template for metric labels.

        Job ids collapse to ``{id}`` and unknown paths collapse to one
        bucket, so label cardinality stays bounded no matter what
        clients request.
        """
        if not parts:
            return "/"
        if parts[0] == "jobs" and len(parts) == 2:
            return "/jobs/{id}"
        if (parts[0] == "jobs" and len(parts) == 3
                and parts[2] in ("result", "trace")):
            return "/jobs/{id}/" + parts[2]
        if len(parts) == 1 and parts[0] in (
            "healthz", "stats", "metrics", "jobs", "match", "search",
        ):
            return "/" + parts[0]
        return "(unknown)"

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ValidationError("request body is empty")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValidationError(f"request body is not valid JSON: {exc}") from None

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def do_GET(self):  # noqa: N802 -- stdlib naming
        self._handle("GET")

    def do_POST(self):  # noqa: N802 -- stdlib naming
        self._handle("POST")

    def _handle(self, method: str):
        """Dispatch one request, recording per-route metrics."""
        started = time.perf_counter()
        self._status = 0
        self._recorded = False
        parts = [part for part in self.path.split("?")[0].split("/") if part]
        route = self._route_label(parts)
        if method == "GET":
            self._get(parts, route, started)
        else:
            self._post(parts)
        if not self._recorded:
            self._record(
                method, route, self._status,
                time.perf_counter() - started,
            )

    def _get(self, parts: list, route: str, started: float):
        if parts == ["healthz"]:
            return self._send_json(200, {"status": "ok"})
        if parts == ["stats"]:
            return self._send_json(200, self.service.stats_snapshot())
        if parts == ["metrics"]:
            # Record the in-flight scrape *before* rendering, so the
            # body always carries at least one HTTP counter and one
            # latency histogram sample -- even on the very first
            # request a scraper makes.
            self._record(
                "GET", route, 200, time.perf_counter() - started,
            )
            return self._send_text(200, self.service.metrics_text())
        if parts == ["jobs"]:
            return self._send_json(200, {
                "jobs": [
                    record.snapshot()
                    for record in self.service.queue.records()
                ],
            })
        if len(parts) == 2 and parts[0] == "jobs":
            record = self.service.queue.get(parts[1])
            if record is None:
                return self._send_json(404, {"error": f"no job {parts[1]!r}"})
            return self._send_json(200, record.snapshot())
        if len(parts) == 3 and parts[:1] == ["jobs"] and parts[2] == "result":
            record = self.service.queue.get(parts[1])
            if record is None:
                return self._send_json(404, {"error": f"no job {parts[1]!r}"})
            if record.state is not JobState.DONE:
                return self._send_json(409, {
                    "error": f"job {record.job_id} is {record.state.value}",
                    "job": record.snapshot(),
                })
            return self._send_json(200, record.result)
        if len(parts) == 3 and parts[:1] == ["jobs"] and parts[2] == "trace":
            record = self.service.queue.get(parts[1])
            if record is None:
                return self._send_json(404, {"error": f"no job {parts[1]!r}"})
            trace = self.service.trace_for(parts[1])
            if trace is None:
                return self._send_json(404, {
                    "error": (
                        f"job {record.job_id} has no trace (submit with "
                        '"trace": true; cache hits carry no trace)'
                    ),
                    "job": record.snapshot(),
                })
            return self._send_json(200, trace)
        return self._send_json(404, {"error": f"no route for {self.path!r}"})

    def _post(self, parts: list):
        try:
            if parts == ["jobs"]:
                spec = self.service.spec_from_request(self._read_body())
                record = self.service.submit(spec)
                return self._send_json(202, record.snapshot())
            if parts == ["match"]:
                spec = self.service.spec_from_request(self._read_body())
                record = self.service.run_sync(spec)
                if record.state is JobState.DONE:
                    return self._send_json(
                        200, record.snapshot(include_result=True)
                    )
                return self._send_json(500, record.snapshot())
            if parts == ["search"]:
                payload = self.service.search_from_request(self._read_body())
                return self._send_json(200, payload)
        except ValidationError as exc:
            return self._send_json(400, {"error": str(exc)})
        return self._send_json(404, {"error": f"no route for {self.path!r}"})


def create_server(service: MatchService, host: str = "127.0.0.1",
                  port: int = 8765) -> ThreadingHTTPServer:
    """Bind a threading HTTP server around ``service`` (port 0 = ephemeral)."""
    server = ThreadingHTTPServer((host, port), MatchRequestHandler)
    server.service = service
    return server


def build_searcher(corpus_dir, cache_dir=None, workers: int = 1,
                   log=NULL_LOGGER):
    """Open a corpus directory (with its saved index) as a searcher.

    Shared by ``qmatch serve --corpus`` and ``qmatch search``.  Raises
    a clean error when the corpus or its index is missing; a *stale*
    index (corpus content changed since the last build) is reported by
    the caller, not rejected -- search still works, it just cannot see
    the un-indexed schemas.
    """
    from repro.corpus.corpus import CorpusError, SchemaCorpus
    from repro.corpus.indexes import INDEX_NAME, CorpusIndex
    from repro.corpus.search import CorpusSearcher

    corpus = SchemaCorpus(corpus_dir)
    if not len(corpus):
        raise CorpusError(
            f"corpus {str(corpus_dir)!r} is empty; build it with "
            "qmatch index build"
        )
    index_path = corpus.root / INDEX_NAME
    if not index_path.exists():
        raise CorpusError(
            f"corpus {str(corpus_dir)!r} has no index; build it with "
            "qmatch index build"
        )
    index = CorpusIndex.load(index_path)
    store = ResultStore(cache_dir) if cache_dir is not None else None
    return CorpusSearcher(
        corpus, index, workers=workers, store=store, log=log,
    )


def serve(host: str = "127.0.0.1", port: int = 8765, workers: int = 2,
          cache_dir=None, verbose: bool = True, isolate: bool = True,
          timeout=None, retries: int = 1, corpus_dir=None,
          log: Optional[EventLogger] = None) -> int:
    """Run the service until interrupted (the ``qmatch serve`` body).

    Lifecycle output is structured: one JSON event record per line on
    stderr (``serve.start``, ``serve.stale_index``, ``serve.stop``),
    all stamped with the same run ID the job/batch events carry.
    """
    log = log if log is not None else EventLogger()
    store = ResultStore(cache_dir) if cache_dir is not None else None
    searcher = None
    if corpus_dir is not None:
        searcher = build_searcher(corpus_dir, cache_dir=cache_dir, log=log)
        if searcher.index.stale_for(searcher.corpus):
            log.event(
                "serve.stale_index",
                corpus=str(corpus_dir),
                message=(
                    "corpus index is stale (corpus content changed since "
                    "the last build); run qmatch index build to refresh"
                ),
            )
    service = MatchService(
        workers=workers, store=store, timeout=timeout, retries=retries,
        isolate=isolate, searcher=searcher, log=log,
    )
    server = create_server(service, host=host, port=port)
    MatchRequestHandler.verbose = verbose
    log.event(
        "serve.start",
        url=f"http://{host}:{server.server_address[1]}",
        workers=workers,
        mode="isolated" if isolate else "inline",
        cache=str(cache_dir) if cache_dir is not None else None,
        corpus=str(corpus_dir) if corpus_dir is not None else None,
        corpus_schemas=len(searcher.corpus) if searcher is not None else None,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        log.event("serve.stop", reason="interrupt")
    finally:
        server.server_close()
        service.shutdown()
    return 0
