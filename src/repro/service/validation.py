"""Input validation shared by every service entry point.

The CLI flags (``--threshold``, ``--weights``), the batch-manifest
parser and the HTTP API all accept the same user-supplied knobs, and all
must fail the same way: a :class:`ValidationError` carrying a one-line
human message, no traceback.  The CLI maps it to exit code 2, the
manifest parser prefixes the offending entry, the HTTP server returns a
400 -- but the checks live here exactly once.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.core.weights import AxisWeights


class ValidationError(ValueError):
    """A user-supplied parameter failed validation (clean CLI error)."""


def validate_threshold(value, field: str = "threshold") -> float:
    """Coerce ``value`` to a float in [0, 1] or raise ValidationError."""
    try:
        threshold = float(value)
    except (TypeError, ValueError):
        raise ValidationError(
            f"invalid {field} {value!r}: expected a number in [0, 1]"
        ) from None
    if not 0.0 <= threshold <= 1.0:
        raise ValidationError(
            f"invalid {field} {threshold!r}: must be in [0, 1]"
        )
    return threshold


#: Canonical axis order and the aliases the named weight forms accept.
#: The four paper axes are required in named form; ``instance`` (the
#: optional fifth, instance-evidence axis) defaults to 0 when omitted.
AXIS_ORDER = ("label", "properties", "level", "children")
OPTIONAL_AXES = ("instance",)
_AXIS_ALIASES = {
    "label": "label", "l": "label",
    "properties": "properties", "props": "properties", "p": "properties",
    "level": "level", "h": "level",
    "children": "children", "c": "children",
    "instance": "instance", "i": "instance",
}


def _axis_key(raw, field, value) -> str:
    key = str(raw).strip().lower()
    axis = _AXIS_ALIASES.get(key)
    if axis is None:
        raise ValidationError(
            f"invalid {field} {value!r}: unknown axis key {raw!r} "
            f"(expected one of {', '.join(AXIS_ORDER + OPTIONAL_AXES)})"
        )
    return axis


def _named_weights(pairs, field, value) -> AxisWeights:
    """Build weights from (key, number) pairs; duplicates rejected."""
    named: dict[str, float] = {}
    for raw_key, raw_number in pairs:
        axis = _axis_key(raw_key, field, value)
        if axis in named:
            raise ValidationError(
                f"invalid {field} {value!r}: duplicate axis key "
                f"{str(raw_key).strip()!r} ({axis} was already given)"
            )
        try:
            named[axis] = float(raw_number)
        except (TypeError, ValueError):
            raise ValidationError(
                f"invalid {field} {value!r}: {axis} must be a number, "
                f"got {raw_number!r}"
            ) from None
    missing = [axis for axis in AXIS_ORDER if axis not in named]
    if missing:
        raise ValidationError(
            f"invalid {field} {value!r}: missing axis "
            f"key{'s' if len(missing) > 1 else ''} {', '.join(missing)}"
        )
    numbers = [named[axis] for axis in AXIS_ORDER]
    numbers.append(named.get("instance", 0.0))
    if any(number < 0 for number in numbers):
        raise ValidationError(
            f"invalid {field} {value!r}: weights must be non-negative"
        )
    if sum(numbers) <= 0:
        raise ValidationError(
            f"invalid {field} {value!r}: at least one weight must be positive"
        )
    return AxisWeights.normalized(*numbers)


def validate_weights(value: Union[str, Sequence, dict, None],
                     field: str = "weights") -> Optional[AxisWeights]:
    """Parse axis weights from a CLI/manifest/HTTP value.

    Accepts ``None`` (pass through), a positional ``"L,P,H,C"`` string
    (optionally ``"L,P,H,C,I"`` with the instance weight appended), a
    named ``"label=3,properties=2,level=1,children=4"`` string
    (single-letter aliases L/P/H/C plus ``instance``/``i`` work too), a
    4- or 5-sequence of numbers, or a mapping carrying the four axis
    keys (plus optionally ``instance``); magnitudes are normalized to
    sum to 1.  The four paper axes are always required; ``instance``
    defaults to 0 when omitted.  Malformed input -- trailing commas,
    empty entries, duplicate or unknown axis keys -- is rejected with a
    precise message rather than silently coerced.
    """
    if value is None:
        return None
    if isinstance(value, AxisWeights):
        return value
    if isinstance(value, dict):
        return _named_weights(value.items(), field, value)
    if isinstance(value, str):
        if not value.strip():
            raise ValidationError(
                f"invalid {field} {value!r}: empty "
                "(expected four comma-separated values)"
            )
        parts = value.split(",")
        if any(not part.strip() for part in parts):
            where = (
                "trailing comma" if not parts[-1].strip() else "empty entry"
            )
            raise ValidationError(
                f"invalid {field} {value!r}: {where} "
                "(expected four comma-separated values)"
            )
        if any("=" in part for part in parts):
            if not all("=" in part for part in parts):
                raise ValidationError(
                    f"invalid {field} {value!r}: mixes named (key=value) "
                    "and positional entries"
                )
            return _named_weights(
                (part.split("=", 1) for part in parts), field, value
            )
    else:
        try:
            parts = list(value)
        except TypeError:
            raise ValidationError(
                f"invalid {field} {value!r}: expected four comma-separated "
                "numbers (label, properties, level, children)"
            ) from None
    try:
        numbers = [float(part) for part in parts]
    except (TypeError, ValueError):
        raise ValidationError(
            f"invalid {field} {value!r}: expected four numbers "
            "(label, properties, level, children)"
        ) from None
    if len(numbers) not in (4, 5):
        raise ValidationError(
            f"invalid {field} {value!r}: expected four numbers "
            f"(label, properties, level, children) or five (plus "
            f"instance), got {len(numbers)}"
        )
    if any(number < 0 for number in numbers):
        raise ValidationError(
            f"invalid {field} {value!r}: weights must be non-negative"
        )
    if sum(numbers) <= 0:
        raise ValidationError(
            f"invalid {field} {value!r}: at least one weight must be positive"
        )
    return AxisWeights.normalized(*numbers)


def validate_algorithm(name, registry=None,
                       field: str = "algorithm") -> str:
    """Check ``name`` against the matcher registry and return it."""
    from repro.engine.registry import DEFAULT_REGISTRY

    registry = registry or DEFAULT_REGISTRY
    if not isinstance(name, str) or name not in registry:
        raise ValidationError(
            f"invalid {field} {name!r}: expected one of {registry.names()}"
        )
    return name


def validate_positive(value, field: str, allow_none: bool = False,
                      allow_zero: bool = False) -> Optional[float]:
    """Coerce a positive number (timeouts, worker counts, backoffs)."""
    if value is None and allow_none:
        return None
    try:
        number = float(value)
    except (TypeError, ValueError):
        raise ValidationError(
            f"invalid {field} {value!r}: expected a positive number"
        ) from None
    if number < 0 or (number == 0 and not allow_zero):
        raise ValidationError(
            f"invalid {field} {number!r}: must be "
            f"{'>= 0' if allow_zero else '> 0'}"
        )
    return number


def validate_search_budget(k, candidates=None,
                           k_field: str = "k",
                           candidates_field: str = "candidates",
                           ) -> tuple[int, Optional[int]]:
    """Validate the top-k / candidate-budget pair of a search request.

    One shared check for ``qmatch search --k/--candidates`` and the HTTP
    ``POST /search`` body (pass ``--k``/``--candidates`` as the field
    names for CLI-flavoured messages).  Enforces the relationship the
    two-stage searcher silently truncated before: the rerank budget must
    cover the requested ``k``, otherwise the top-k cut can never fill.
    """
    try:
        k_value = int(k)
    except (TypeError, ValueError):
        raise ValidationError(
            f"invalid {k_field} {k!r}: expected a positive integer"
        ) from None
    if k_value < 1:
        raise ValidationError(f"invalid {k_field} {k_value}: must be >= 1")
    if candidates is None:
        return k_value, None
    try:
        budget = int(candidates)
    except (TypeError, ValueError):
        raise ValidationError(
            f"invalid {candidates_field} {candidates!r}: "
            "expected a positive integer"
        ) from None
    if budget < 1:
        raise ValidationError(
            f"invalid {candidates_field} {budget}: must be >= 1"
        )
    if budget < k_value:
        raise ValidationError(
            f"{candidates_field} ({budget}) must be >= {k_field} "
            f"({k_value}): the rerank budget caps how many hits can be "
            "returned"
        )
    return k_value, budget
