"""The unified match-engine layer.

Three pieces every matcher in the library plugs into:

- :class:`MatchContext` -- built once per (source, target) schema pair;
  precomputes and caches per-node state (postorder, depths, leaf sets,
  tokenized labels, property signatures) and memoizes pairwise
  linguistic/property comparisons so the O(n*m) hot loops never redo
  per-node work;
- :class:`MatcherRegistry` / :data:`DEFAULT_REGISTRY` -- matchers
  register by name behind a uniform construction interface; the CLI,
  :func:`repro.make_matcher` and the evaluation harness resolve
  algorithms exclusively through it;
- :class:`EngineStats` -- per-stage wall time, pair counts and cache
  hit/miss counters, threaded through the context and surfaced on
  :class:`~repro.matching.result.MatchResult` and the CLI ``--stats``
  flag.

See DESIGN.md's "Engine architecture" section for the lifecycle.
"""

from repro.engine.context import LABEL_CACHE, PROPERTY_CACHE, MatchContext
from repro.engine.registry import (
    DEFAULT_REGISTRY,
    MatcherRegistry,
    MatcherSpec,
    register_default_matchers,
)
from repro.engine.stats import CacheStats, EngineStats, StageStats

__all__ = [
    "CacheStats",
    "DEFAULT_REGISTRY",
    "EngineStats",
    "LABEL_CACHE",
    "MatchContext",
    "MatcherRegistry",
    "MatcherSpec",
    "PROPERTY_CACHE",
    "register_default_matchers",
    "StageStats",
]
