"""The shared per-pair match context.

A :class:`MatchContext` is built once per (source, target) schema pair
and handed to every matcher that scores the pair.  It owns:

- the **shared services**: one :class:`LinguisticMatcher` and one
  :class:`PropertyMatcher` instance used by every matcher running under
  the context, so tokenization, thesaurus lookups and property
  comparisons happen once per distinct input instead of once per
  matcher;
- the **per-node precomputation**: postorder/preorder node lists, leaf
  sets, depths, tokenized labels and property signatures -- everything
  the paper's O(n*m) bound assumes is not redone inside the hot loop;
- the **pairwise memo**: label comparisons and property comparisons
  keyed by their actual inputs (label text / property signature), with
  hit/miss accounting in :class:`EngineStats`;
- the **instrumentation**: an :class:`EngineStats` collecting per-stage
  wall time, pair counts and cache counters for the whole run.

Matchers receive the context through
:meth:`repro.matching.base.Matcher.match_context`; a matcher run
standalone builds its own context (injecting its configured services via
:meth:`Matcher.make_context`), while a composite or harness run builds
one context and shares it across all constituent matchers.

``cache_enabled=False`` turns the pairwise memo off (every lookup
recomputes through the underlying services); the property-based
equivalence tests use it to prove cached and cold runs are
bit-identical.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.stats import EngineStats
from repro.linguistic.matcher import LabelComparison, LinguisticMatcher
from repro.obs.trace import NULL_TRACER
from repro.properties.matcher import PropertyComparison, PropertyMatcher
from repro.xsd.model import SchemaNode, SchemaTree

#: Names of the engine-level caches (as they appear in ``EngineStats``).
LABEL_CACHE = "context.labels"
PROPERTY_CACHE = "context.properties"
INSTANCE_CACHE = "context.instances"


class MatchContext:
    """Precomputed, cached state for matching one (source, target) pair."""

    def __init__(
        self,
        source: SchemaTree,
        target: SchemaTree,
        linguistic: Optional[LinguisticMatcher] = None,
        property_matcher: Optional[PropertyMatcher] = None,
        stats: Optional[EngineStats] = None,
        cache_enabled: bool = True,
        tracer=None,
    ):
        self.source = source
        self.target = target
        self.linguistic = linguistic or LinguisticMatcher()
        self.property_matcher = property_matcher or PropertyMatcher()
        self.stats = stats if stats is not None else EngineStats()
        self.cache_enabled = cache_enabled
        #: Decision-trace recorder (see :mod:`repro.obs.trace`).  The
        #: default :data:`NULL_TRACER` is falsy-``enabled``, so matchers
        #: pay exactly one branch per pair when tracing is off.
        self.tracer = tracer if tracer is not None else NULL_TRACER

        # Node-list precomputation is lazy: cheap matchers (tree-edit,
        # flooding) walk the trees themselves and never pay for it.
        self._source_postorder: Optional[list[SchemaNode]] = None
        self._target_postorder: Optional[list[SchemaNode]] = None
        self._source_preorder: Optional[list[SchemaNode]] = None
        self._target_preorder: Optional[list[SchemaNode]] = None
        self._leaf_lists: dict[int, list[SchemaNode]] = {}

        # Pairwise memos.
        self._label_memo: dict[tuple[str, str], LabelComparison] = {}
        self._property_memo: dict[tuple, PropertyComparison] = {}
        self._instance_memo: dict[tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    # Per-node precomputed state
    # ------------------------------------------------------------------

    @property
    def source_postorder(self) -> list[SchemaNode]:
        """Source nodes, children before parents (computed once)."""
        if self._source_postorder is None:
            self._source_postorder = list(self.source.root.iter_postorder())
        return self._source_postorder

    @property
    def target_postorder(self) -> list[SchemaNode]:
        """Target nodes, children before parents (computed once)."""
        if self._target_postorder is None:
            self._target_postorder = list(self.target.root.iter_postorder())
        return self._target_postorder

    @property
    def source_preorder(self) -> list[SchemaNode]:
        if self._source_preorder is None:
            self._source_preorder = list(self.source.root.iter_preorder())
        return self._source_preorder

    @property
    def target_preorder(self) -> list[SchemaNode]:
        if self._target_preorder is None:
            self._target_preorder = list(self.target.root.iter_preorder())
        return self._target_preorder

    @property
    def pair_count(self) -> int:
        """Size of the full pair grid (``n * m``)."""
        return len(self.source_postorder) * len(self.target_postorder)

    def leaves(self, node: SchemaNode) -> list[SchemaNode]:
        """The leaf set of ``node``'s subtree, computed once per node."""
        cached = self._leaf_lists.get(id(node))
        if cached is None:
            cached = list(node.iter_leaves())
            self._leaf_lists[id(node)] = cached
        return cached

    def depth(self, node: SchemaNode) -> int:
        """Nesting depth of ``node`` (the model caches this per node)."""
        return node.level

    def prepared_tokens(self, label: str) -> list[str]:
        """Tokenized, stop-word-filtered form of ``label``.

        Delegates to the shared linguistic matcher's per-label token
        cache, so a label is tokenized at most once per context.
        """
        return self.linguistic._prepare_tokens(label)

    def property_signature(self, node: SchemaNode) -> tuple:
        """The node's property tuple (type, order, occurs, kind)."""
        return self.property_matcher.signature(node)

    def warm(self) -> "MatchContext":
        """Eagerly precompute all per-node state (the context build step
        the tentpole describes).  Optional: everything also fills in
        lazily on first use."""
        with self.stats.stage("context.warm"):
            for node in self.source_postorder:
                self.prepared_tokens(node.name)
            for node in self.target_postorder:
                self.prepared_tokens(node.name)
            self.leaves(self.source.root)
            self.leaves(self.target.root)
        return self

    # ------------------------------------------------------------------
    # Memoized pairwise scores
    # ------------------------------------------------------------------

    def label_comparison(self, left: str, right: str) -> LabelComparison:
        """Linguistic comparison of two labels, memoized per text pair.

        This is the single entry point for label evidence inside the
        engine: QMatch's label axis, Cupid's lsim, the linguistic
        baseline's matrix and documentation-text comparisons all route
        through here, so any label pair is analysed once per context no
        matter how many matchers ask.
        """
        if not self.cache_enabled:
            return self.linguistic.compare_labels(left, right)
        key = (left, right)
        cached = self._label_memo.get(key)
        if cached is None:
            self.stats.record_miss(LABEL_CACHE)
            cached = self.linguistic.compare_labels(left, right)
            self._label_memo[key] = cached
            self._label_memo[(right, left)] = cached  # symmetric
        else:
            self.stats.record_hit(LABEL_CACHE)
        return cached

    def label_score(self, left: str, right: str) -> float:
        return self.label_comparison(left, right).score

    def label_cached(self, left: str, right: str) -> bool:
        """Whether the label memo already holds this pair (trace
        provenance: checked *before* the comparison runs)."""
        return self.cache_enabled and (left, right) in self._label_memo

    def property_cached(self, source: SchemaNode,
                        target: SchemaNode) -> bool:
        """Whether the property memo already holds this signature pair."""
        if not self.cache_enabled:
            return False
        key = (
            self.property_matcher.signature(source),
            self.property_matcher.signature(target),
        )
        return key in self._property_memo

    def property_comparison(
        self, source: SchemaNode, target: SchemaNode
    ) -> PropertyComparison:
        """Properties-axis comparison, memoized per signature pair.

        Two node pairs with identical (type, order, occurs, kind)
        signatures share one comparison -- schema vocabularies repeat
        these heavily, so the memo collapses the O(n*m) property work to
        the number of distinct signature pairs.
        """
        if not self.cache_enabled:
            return self.property_matcher.compare(source, target)
        key = (
            self.property_matcher.signature(source),
            self.property_matcher.signature(target),
        )
        cached = self._property_memo.get(key)
        if cached is None:
            self.stats.record_miss(PROPERTY_CACHE)
            cached = self.property_matcher.compare(source, target)
            self._property_memo[key] = cached
        else:
            self.stats.record_hit(PROPERTY_CACHE)
        return cached

    def instance_cached(self, source: SchemaNode,
                        target: SchemaNode) -> bool:
        """Whether the instance memo already holds this node pair."""
        return (
            self.cache_enabled
            and (id(source), id(target)) in self._instance_memo
        )

    def instance_score(self, source: SchemaNode,
                       target: SchemaNode) -> float:
        """Instance-axis (value-profile) similarity, memoized per node pair.

        Profiles are attached ahead of matching (see
        :func:`repro.ingest.profile.attach_profiles`); nodes without one
        score by the evidence rules of
        :func:`repro.ingest.profile.profile_similarity` (no evidence ->
        1.0, one-sided evidence -> 0.5).  Only ever invoked when the
        configured ``instance`` weight is nonzero, so four-axis runs pay
        nothing -- not even an empty memo lookup -- for the fifth axis.
        """
        from repro.ingest.profile import PROFILE_PROPERTY, profile_similarity

        if not self.cache_enabled:
            return profile_similarity(
                source.properties.get(PROFILE_PROPERTY),
                target.properties.get(PROFILE_PROPERTY),
            )
        key = (id(source), id(target))
        cached = self._instance_memo.get(key)
        if cached is None:
            self.stats.record_miss(INSTANCE_CACHE)
            cached = profile_similarity(
                source.properties.get(PROFILE_PROPERTY),
                target.properties.get(PROFILE_PROPERTY),
            )
            self._instance_memo[key] = cached
        else:
            self.stats.record_hit(INSTANCE_CACHE)
        return cached

    # ------------------------------------------------------------------

    def __repr__(self):
        return (
            f"<MatchContext {self.source.name!r} x {self.target.name!r} "
            f"cache={'on' if self.cache_enabled else 'off'} "
            f"labels={len(self._label_memo)} props={len(self._property_memo)}>"
        )
