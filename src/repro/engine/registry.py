"""The matcher registry: every match algorithm, constructible by name.

The XML-matcher survey literature frames matchers as interchangeable
components behind one pipeline interface; this module is that interface's
catalog.  A :class:`MatcherRegistry` maps a short algorithm name to a
factory producing a configured :class:`~repro.matching.base.Matcher`;
the CLI, the evaluation harness and :func:`repro.make_matcher` all
resolve algorithms exclusively through it, so adding an algorithm is one
``register`` call -- no constructor wiring spread across entry points.

:data:`DEFAULT_REGISTRY` ships with every matcher family in the library
registered: the paper's three algorithms (``qmatch``, ``linguistic``,
``structural``), the related-work baselines (``tree-edit``, ``cupid``,
``flooding``), the single-axis ``properties`` matcher, the COMA-style
``composite`` and its elementary members (``name``, ``name-path``,
``type``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional


@dataclass(frozen=True)
class MatcherSpec:
    """One registry entry: the factory plus display metadata."""

    name: str
    factory: Callable
    description: str = ""


class MatcherRegistry:
    """Name -> matcher-factory registry with a uniform ``create`` call."""

    def __init__(self):
        self._specs: dict[str, MatcherSpec] = {}

    def register(self, name: str, factory: Optional[Callable] = None,
                 description: str = "", replace: bool = False):
        """Register ``factory`` under ``name``.

        Usable directly (``registry.register("x", XMatcher)``) or as a
        class decorator (``@registry.register("x")``).  Re-registering a
        taken name raises unless ``replace=True``.
        """
        def _add(target: Callable):
            if name in self._specs and not replace:
                raise ValueError(
                    f"matcher name {name!r} is already registered; "
                    "pass replace=True to override"
                )
            self._specs[name] = MatcherSpec(
                name=name, factory=target, description=description
            )
            return target

        if factory is None:
            return _add
        return _add(factory)

    def create(self, name: str, **kwargs):
        """Instantiate the matcher registered under ``name``.

        ``kwargs`` are forwarded to the factory (e.g.
        ``config=QMatchConfig(...)`` or ``thesaurus=...``).
        """
        spec = self._specs.get(name)
        if spec is None:
            raise ValueError(
                f"unknown algorithm {name!r}; expected one of {self.names()}"
            )
        return spec.factory(**kwargs)

    def spec(self, name: str) -> MatcherSpec:
        spec = self._specs.get(name)
        if spec is None:
            raise ValueError(
                f"unknown algorithm {name!r}; expected one of {self.names()}"
            )
        return spec

    def names(self) -> tuple[str, ...]:
        return tuple(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[str]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)


def _default_composite(matchers=None, aggregation: str = "max",
                       weights=None, name=None):
    """Factory for the registry's ``composite`` entry.

    With no explicit members it builds COMA's classic complementary
    pair -- linguistic + structural under ``max`` aggregation.
    """
    from repro.composite.combine import CompositeMatcher
    from repro.linguistic.matcher import LinguisticMatcher
    from repro.structural.matcher import StructuralMatcher

    if matchers is None:
        matchers = [LinguisticMatcher(), StructuralMatcher()]
    return CompositeMatcher(
        matchers, aggregation=aggregation, weights=weights, name=name
    )


def register_default_matchers(registry: MatcherRegistry) -> MatcherRegistry:
    """Register every matcher family the library ships into ``registry``."""
    from repro.composite.elementary import (
        NameMatcher,
        NamePathMatcher,
        TypeMatcher,
    )
    from repro.core.qmatch import QMatchMatcher
    from repro.cupid.matcher import CupidMatcher
    from repro.linguistic.matcher import LinguisticMatcher
    from repro.properties.matcher import PropertiesMatcher
    from repro.structural.flooding import SimilarityFloodingMatcher
    from repro.structural.matcher import StructuralMatcher
    from repro.structural.tree_edit import TreeEditMatcher

    registry.register(
        "qmatch", QMatchMatcher,
        description="the paper's hybrid QoM algorithm (Section 4)",
    )
    registry.register(
        "linguistic", LinguisticMatcher,
        description="Cupid-style label similarity (the linguistic baseline)",
    )
    registry.register(
        "structural", StructuralMatcher,
        description="label-blind shape similarity (the structural baseline)",
    )
    registry.register(
        "tree-edit", TreeEditMatcher,
        description="Zhang-Shasha tree edit distance baseline",
    )
    registry.register(
        "cupid", CupidMatcher,
        description="Cupid's full TreeMatch (lsim + ssim + propagation)",
    )
    registry.register(
        "flooding", SimilarityFloodingMatcher,
        description="similarity-flooding fixpoint baseline",
    )
    registry.register(
        "properties", PropertiesMatcher,
        description="single-axis properties matcher (type/order/occurs/kind)",
    )
    registry.register(
        "composite", _default_composite,
        description="COMA-style combination (default: linguistic+structural, max)",
    )
    registry.register(
        "name", NameMatcher,
        description="COMA elementary: label similarity only",
    )
    registry.register(
        "name-path", NamePathMatcher,
        description="COMA elementary: root-to-node label-path similarity",
    )
    registry.register(
        "type", TypeMatcher,
        description="COMA elementary: data-type lattice compatibility",
    )
    return registry


#: The process-wide registry every entry point resolves against.
DEFAULT_REGISTRY = register_default_matchers(MatcherRegistry())
