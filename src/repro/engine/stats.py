"""Per-stage instrumentation for the match engine.

:class:`EngineStats` is the single instrumentation object threaded
through a :class:`~repro.engine.context.MatchContext`: every matcher
stage records its wall time under a named stage, hot-path caches record
hit/miss counters, and matchers bump pair counters.  The result surfaces
on :class:`~repro.matching.result.MatchResult.stats` and behind the CLI
``--stats`` flag, and is the hook later sharding/async/batching work
reports through.

Stages nest (``score:qmatch`` may run inside ``evaluate:PO``); nested
time is attributed to every active stage, which keeps the report
readable ("how long did selection take?") without building a profiler.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional


@dataclass
class StageStats:
    """Accumulated wall time of one named engine stage."""

    name: str
    calls: int = 0
    seconds: float = 0.0

    def add(self, elapsed: float):
        self.calls += 1
        self.seconds += elapsed


@dataclass
class CacheStats:
    """Hit/miss counters of one named engine cache."""

    name: str
    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never used)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


class EngineStats:
    """Wall time per stage, pair counts and cache hit/miss counters.

    One instance lives on each :class:`MatchContext`; sharing a context
    across matchers (the composite, or a harness run) accumulates into
    the same object, so the report covers the whole pipeline.
    """

    def __init__(self):
        self.stages: dict[str, StageStats] = {}
        self.caches: dict[str, CacheStats] = {}
        self.counters: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    @contextmanager
    def stage(self, name: str):
        """Time a block of work under ``name`` (re-entrant per name).

        The stage is registered on *entry*, so reports render stages in
        pipeline order (an outer stage appears before the inner stages
        it wraps) rather than completion order.
        """
        stage = self.stages.get(name)
        if stage is None:
            stage = self.stages[name] = StageStats(name)
        started = time.perf_counter()
        try:
            yield self
        finally:
            stage.add(time.perf_counter() - started)

    def count(self, name: str, amount: int = 1):
        """Bump a free-form counter (pair counts, node counts, ...)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def cache(self, name: str) -> CacheStats:
        """The hit/miss record of cache ``name`` (created on first use)."""
        stats = self.caches.get(name)
        if stats is None:
            stats = self.caches[name] = CacheStats(name)
        return stats

    def record_hit(self, cache_name: str):
        self.cache(cache_name).hits += 1

    def record_miss(self, cache_name: str):
        self.cache(cache_name).misses += 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def stage_seconds(self, name: str) -> float:
        stage = self.stages.get(name)
        return stage.seconds if stage else 0.0

    def hit_rate(self, cache_name: str) -> float:
        """Hit rate of one cache; 0.0 for an unknown or unused cache."""
        stats = self.caches.get(cache_name)
        return stats.hit_rate if stats else 0.0

    def total_cache_hit_rate(self) -> float:
        """Hit rate over every engine cache combined."""
        hits = sum(c.hits for c in self.caches.values())
        lookups = sum(c.lookups for c in self.caches.values())
        return hits / lookups if lookups else 0.0

    def merge(self, other: "EngineStats") -> "EngineStats":
        """Fold ``other``'s numbers into this instance (and return it)."""
        for name, stage in other.stages.items():
            mine = self.stages.get(name)
            if mine is None:
                mine = self.stages[name] = StageStats(name)
            mine.calls += stage.calls
            mine.seconds += stage.seconds
        for name, cache in other.caches.items():
            mine = self.cache(name)
            mine.hits += cache.hits
            mine.misses += cache.misses
        for name, value in other.counters.items():
            self.count(name, value)
        return self

    @classmethod
    def from_dict(cls, payload: dict) -> "EngineStats":
        """Rebuild an instance from an :meth:`as_dict` snapshot.

        The cross-process aggregation hook: batch-service workers return
        their stats as plain dicts over a pipe, and the parent folds
        them back into one report via ``stats.merge(EngineStats.from_dict(d))``.
        """
        stats = cls()
        for name, entry in (payload.get("stages") or {}).items():
            stage = stats.stages[name] = StageStats(name)
            stage.calls = int(entry.get("calls", 0))
            stage.seconds = float(entry.get("seconds", 0.0))
        for name, entry in (payload.get("caches") or {}).items():
            cache = stats.cache(name)
            cache.hits = int(entry.get("hits", 0))
            cache.misses = int(entry.get("misses", 0))
        for name, value in (payload.get("counters") or {}).items():
            stats.counters[name] = int(value)
        return stats

    def as_dict(self) -> dict:
        """JSON-friendly snapshot of everything recorded."""
        return {
            "stages": {
                name: {"calls": s.calls, "seconds": s.seconds}
                for name, s in self.stages.items()
            },
            "caches": {
                name: {
                    "hits": c.hits,
                    "misses": c.misses,
                    "hit_rate": c.hit_rate,
                }
                for name, c in self.caches.items()
            },
            "counters": dict(self.counters),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Machine-readable snapshot (``--stats --format json``)."""
        return json.dumps(self.as_dict(), indent=indent)

    def pretty(self) -> str:
        """Human-readable report, stages in pipeline (insertion) order."""
        return self.render()

    def render(self) -> str:
        """Human-readable report (what ``qmatch match --stats`` prints)."""
        lines = ["engine stats"]
        if self.stages:
            lines.append("  stages:")
            for stage in self.stages.values():
                lines.append(
                    f"    {stage.name:<24} {stage.seconds * 1000.0:9.2f} ms"
                    f"  ({stage.calls} call{'s' if stage.calls != 1 else ''})"
                )
        if self.caches:
            lines.append("  caches:")
            for cache in self.caches.values():
                lines.append(
                    f"    {cache.name:<24} {cache.hits} hit / "
                    f"{cache.misses} miss  ({cache.hit_rate:.1%} hit rate)"
                )
        if self.counters:
            lines.append("  counters:")
            for name in sorted(self.counters):
                lines.append(f"    {name:<24} {self.counters[name]}")
        if len(lines) == 1:
            lines.append("  (nothing recorded)")
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"<EngineStats stages={len(self.stages)} "
            f"caches={len(self.caches)} counters={len(self.counters)}>"
        )
