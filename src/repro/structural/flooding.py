"""Similarity flooding (Melnik, Garcia-Molina, Rahm -- ICDE 2002).

A graph-propagation structural matcher from the same related-work family
the paper surveys.  The two schema trees induce a *pairwise connectivity
graph* whose nodes are (source node, target node) pairs; two pair-nodes
are connected when their components are connected by the same edge label
on both sides (here: ``child`` and its inverse ``parent``).  Similarity
"floods" across this graph from an initial string-similarity seed until
a fixpoint::

    sigma_{i+1} = normalize( sigma_0 + sigma_i + propagate(sigma_i) )

which is the basic fixpoint formula of the original paper.  Propagation
coefficients split each pair-node's contribution equally over its
out-neighbours per edge label.

The iteration is a sparse matrix-vector product (scipy), so the
paper-scale protein pair floods in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.linguistic.tokenizer import normalize as normalize_label
from repro.linguistic.string_metrics import blended_similarity
from repro.matching.base import Matcher
from repro.matching.result import ScoreMatrix


@dataclass(frozen=True)
class FloodingConfig:
    """Fixpoint parameters.

    Iteration stops when the residual (max absolute change after
    normalization) drops below ``epsilon`` or after ``max_iterations``.
    """

    epsilon: float = 1e-4
    max_iterations: int = 100

    def __post_init__(self):
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")


class SimilarityFloodingMatcher(Matcher):
    """The basic similarity-flooding fixpoint over two schema trees."""

    name = "flooding"

    def __init__(self, config=None):
        self.config = config or FloodingConfig()
        #: Iterations the last :meth:`score_matrix` call took (for tests
        #: and reports).
        self.last_iterations = 0

    def match_context(self, ctx) -> ScoreMatrix:
        source, target = ctx.source, ctx.target
        s_nodes = ctx.source_preorder
        t_nodes = ctx.target_preorder
        n, m = len(s_nodes), len(t_nodes)
        s_index = {id(node): i for i, node in enumerate(s_nodes)}
        t_index = {id(node): j for j, node in enumerate(t_nodes)}

        def pair_id(i, j):
            return i * m + j

        # Initial similarity: cheap label string similarity (the
        # original seeds from string matching; thesaurus knowledge is
        # deliberately not used -- flooding is the structural engine).
        sigma0 = np.empty(n * m, dtype=np.float64)
        t_norms = [normalize_label(node.name) for node in t_nodes]
        for i, s_node in enumerate(s_nodes):
            s_norm = normalize_label(s_node.name)
            base = i * m
            for j in range(m):
                sigma0[base + j] = blended_similarity(s_norm, t_norms[j])

        # Propagation graph: pair (s, t) sends weight to (s_child,
        # t_child) along 'child' and to parents along 'parent'.  Each
        # edge label's outgoing weight from a pair-node splits equally
        # over its out-neighbours (the original's coefficient scheme).
        rows, cols, data = [], [], []
        for s_node in s_nodes:
            i = s_index[id(s_node)]
            for t_node in t_nodes:
                j = t_index[id(t_node)]
                this = pair_id(i, j)
                # child edges
                child_pairs = [
                    pair_id(s_index[id(sc)], t_index[id(tc)])
                    for sc in s_node.children
                    for tc in t_node.children
                ]
                if child_pairs:
                    weight = 1.0 / len(child_pairs)
                    for neighbour in child_pairs:
                        rows.append(neighbour)
                        cols.append(this)
                        data.append(weight)
                # parent edge (unique when both nodes have parents)
                if s_node.parent is not None and t_node.parent is not None:
                    neighbour = pair_id(
                        s_index[id(s_node.parent)], t_index[id(t_node.parent)]
                    )
                    rows.append(neighbour)
                    cols.append(this)
                    data.append(1.0)
        propagation = sparse.csr_matrix(
            (data, (rows, cols)), shape=(n * m, n * m)
        )

        sigma = sigma0.copy()
        self.last_iterations = 0
        for _ in range(self.config.max_iterations):
            updated = sigma0 + sigma + propagation.dot(sigma)
            peak = updated.max()
            if peak > 0:
                updated /= peak
            residual = np.abs(updated - sigma).max()
            sigma = updated
            self.last_iterations += 1
            if residual < self.config.epsilon:
                break

        matrix = ScoreMatrix(source, target)
        for i, s_node in enumerate(s_nodes):
            base = i * m
            for j, t_node in enumerate(t_nodes):
                matrix.set(s_node, t_node, float(sigma[base + j]))
        ctx.stats.count("flooding.pairs", len(matrix))
        ctx.stats.count("flooding.iterations", self.last_iterations)
        return matrix
