"""Cupid-style structural matcher (label-blind).

Scores every (source node, target node) pair from schema *shape* alone:

- **leaf pairs** score by data-type similarity (the XSD type lattice)
  blended with occurrence compatibility and kind agreement;
- **inner pairs** score by the classic Cupid structural similarity
  (ssim): the fraction of descendant leaves on both sides that have a
  *strong link* -- a leaf counterpart with similarity at or above the
  strong-link threshold -- blended with arity and height similarity;
- **leaf vs inner** pairs score low by construction (a single-leaf
  "subtree" rarely covers a populated one).

This is deliberately label-blind: on the paper's Figure 7/8 example
(structurally identical, linguistically disjoint trees) it scores high
where the linguistic matcher scores near zero, which is exactly the
behaviour Figure 9 depends on.

Implementation note: strong-link counts are aggregated bottom-up with a
dynamic program over (source node, target node) pairs (``linked(u, v) =
sum over children c of u of linked(c, v)``), vectorized with numpy, so
the whole matrix costs O(n*m) -- the paper-scale protein pair
(231 x 3753 nodes) completes in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matching.base import Matcher
from repro.matching.result import ScoreMatrix
from repro.properties.matcher import occurs_range_overlaps
from repro.linguistic.tokenizer import normalize
from repro.properties.types import type_similarity
from repro.xsd.model import SchemaNode


@dataclass(frozen=True)
class StructuralConfig:
    """Knobs of the structural matcher.

    ``strong_link_threshold`` is Cupid's th-accept for leaf links; the
    three blend weights (ssim / arity / height) must sum to 1.
    """

    strong_link_threshold: float = 0.6
    ssim_weight: float = 0.6
    arity_weight: float = 0.2
    height_weight: float = 0.2
    #: Leaf-score blend.  ``leaf_type_weight`` goes to data-type
    #: similarity; ``leaf_label_weight`` to *raw* normalized-string
    #: equality (Cupid's structure phase seeds leaf similarities with
    #: name equality -- no thesaurus, no tokens: that is the linguistic
    #: matcher's domain); ``order_weight`` rewards sibling-position
    #: proximity (element order is structural information inherent in
    #: XML that the paper highlights); the remainder is split evenly
    #: between occurrence compatibility and kind agreement.
    leaf_type_weight: float = 0.4
    leaf_label_weight: float = 0.25
    order_weight: float = 0.1

    def __post_init__(self):
        total = self.ssim_weight + self.arity_weight + self.height_weight
        if abs(total - 1.0) > 1e-9:
            raise ValueError(
                f"ssim/arity/height weights must sum to 1, got {total}"
            )


def _leaf_signature(node: SchemaNode):
    """Hashable leaf descriptor; equal signatures => equal leaf scores."""
    return (
        node.type_name, node.min_occurs, node.max_occurs, node.kind,
        node.order or 1, normalize(node.name),
    )


class StructuralMatcher(Matcher):
    """The structural algorithm: shape-only similarity for all node pairs."""

    name = "structural"

    def __init__(self, config=None):
        self.config = config or StructuralConfig()

    # ------------------------------------------------------------------
    # Public pieces
    # ------------------------------------------------------------------

    def leaf_similarity(self, source: SchemaNode, target: SchemaNode) -> float:
        """Shape similarity of two leaves (no labels involved)."""
        type_part = type_similarity(source.type_name, target.type_name)
        if (source.min_occurs, source.max_occurs) == (
            target.min_occurs, target.max_occurs
        ):
            occurs_part = 1.0
        elif occurs_range_overlaps(
            source.min_occurs, source.max_occurs,
            target.min_occurs, target.max_occurs,
        ):
            occurs_part = 0.7
        else:
            occurs_part = 0.0
        kind_part = 1.0 if source.kind is target.kind else 0.5
        source_order = source.order or 1
        target_order = target.order or 1
        order_part = 1.0 / (1.0 + abs(source_order - target_order))
        label_part = 1.0 if normalize(source.name) == normalize(target.name) else 0.0
        rest = (
            1.0
            - self.config.leaf_type_weight
            - self.config.leaf_label_weight
            - self.config.order_weight
        ) / 2
        return (
            self.config.leaf_type_weight * type_part
            + self.config.leaf_label_weight * label_part
            + self.config.order_weight * order_part
            + rest * occurs_part
            + rest * kind_part
        )

    # ------------------------------------------------------------------
    # Matcher protocol
    # ------------------------------------------------------------------

    def match_context(self, ctx) -> ScoreMatrix:
        matrix = ScoreMatrix(ctx.source, ctx.target)
        s_nodes = ctx.source_postorder
        t_nodes = ctx.target_postorder
        s_index = {id(node): i for i, node in enumerate(s_nodes)}
        t_index = {id(node): j for j, node in enumerate(t_nodes)}
        n, m = len(s_nodes), len(t_nodes)

        # Leaf similarity per *signature* pair -- leaves sharing a
        # (type, occurs, kind) signature are interchangeable, which keeps
        # the pairwise leaf pass tiny even for thousands of leaves.
        s_leaves = [node for node in s_nodes if node.is_leaf]
        t_leaves = [node for node in t_nodes if node.is_leaf]
        s_signatures = sorted({_leaf_signature(node) for node in s_leaves},
                              key=repr)
        t_signatures = sorted({_leaf_signature(node) for node in t_leaves},
                              key=repr)
        signature_score = {}
        for s_sig in s_signatures:
            s_probe = _node_from_signature(s_sig)
            for t_sig in t_signatures:
                signature_score[(s_sig, t_sig)] = self.leaf_similarity(
                    s_probe, _node_from_signature(t_sig)
                )

        threshold = self.config.strong_link_threshold
        # linked_s[i, j]: leaves under source node i strongly linked into
        # the leaf set of target node j (and the transpose for linked_t).
        linked_s = np.zeros((n, m), dtype=np.int32)
        linked_t = np.zeros((n, m), dtype=np.int32)
        strongly_linked_sigs = {
            (s_sig, t_sig)
            for (s_sig, t_sig), score in signature_score.items()
            if score >= threshold
        }
        s_strong_sigs = {}
        for s_sig, t_sig in strongly_linked_sigs:
            s_strong_sigs.setdefault(s_sig, set()).add(t_sig)

        # Base case: leaf x node "does any strong partner live under v".
        t_sig_members: dict = {}
        for t_leaf in t_leaves:
            t_sig_members.setdefault(_leaf_signature(t_leaf), []).append(t_leaf)
        for s_leaf in s_leaves:
            strong_sigs = s_strong_sigs.get(_leaf_signature(s_leaf))
            if not strong_sigs:
                continue
            i = s_index[id(s_leaf)]
            marked = set()
            for t_sig in strong_sigs:
                for t_leaf in t_sig_members[t_sig]:
                    node = t_leaf
                    while node is not None and id(node) not in marked:
                        marked.add(id(node))
                        linked_s[i, t_index[id(node)]] = 1
                        node = node.parent
        # Mirror for target leaves into source subtrees.
        s_sig_members: dict = {}
        for s_leaf in s_leaves:
            s_sig_members.setdefault(_leaf_signature(s_leaf), []).append(s_leaf)
        t_strong_sigs = {}
        for s_sig, t_sig in strongly_linked_sigs:
            t_strong_sigs.setdefault(t_sig, set()).add(s_sig)
        for t_leaf in t_leaves:
            strong_sigs = t_strong_sigs.get(_leaf_signature(t_leaf))
            if not strong_sigs:
                continue
            j = t_index[id(t_leaf)]
            marked = set()
            for s_sig in strong_sigs:
                for s_leaf in s_sig_members[s_sig]:
                    node = s_leaf
                    while node is not None and id(node) not in marked:
                        marked.add(id(node))
                        linked_t[s_index[id(node)], j] = 1
                        node = node.parent

        # DP: aggregate children into parents (postorder guarantees
        # children come first).  linked_s rows aggregate over the source
        # tree; linked_t columns aggregate over the target tree.
        for i, s_node in enumerate(s_nodes):
            if s_node.children:
                child_rows = [linked_s[s_index[id(c)]] for c in s_node.children]
                linked_s[i] = np.sum(child_rows, axis=0)
        for j, t_node in enumerate(t_nodes):
            if t_node.children:
                child_cols = [linked_t[:, t_index[id(c)]] for c in t_node.children]
                linked_t[:, j] = np.sum(child_cols, axis=0)

        # Vectorized blend (leaf sets come precomputed from the context).
        s_leaf_count = np.array(
            [len(ctx.leaves(node)) for node in s_nodes], dtype=np.float64,
        )
        t_leaf_count = np.array(
            [len(ctx.leaves(node)) for node in t_nodes], dtype=np.float64,
        )
        ssim = (linked_s + linked_t) / (
            s_leaf_count[:, None] + t_leaf_count[None, :]
        )

        s_arity = np.array([len(node.children) for node in s_nodes], dtype=np.float64)
        t_arity = np.array([len(node.children) for node in t_nodes], dtype=np.float64)
        arity_max = np.maximum(s_arity[:, None], t_arity[None, :])
        arity_min = np.minimum(s_arity[:, None], t_arity[None, :])
        with np.errstate(invalid="ignore", divide="ignore"):
            arity = np.where(arity_max > 0, arity_min / arity_max, 1.0)

        s_height = np.array([node.height for node in s_nodes], dtype=np.float64)
        t_height = np.array([node.height for node in t_nodes], dtype=np.float64)
        height = (np.minimum(s_height[:, None], t_height[None, :]) + 1) / (
            np.maximum(s_height[:, None], t_height[None, :]) + 1
        )

        config = self.config
        scores = (
            config.ssim_weight * ssim
            + config.arity_weight * arity
            + config.height_weight * height
        )

        # Leaf-leaf pairs use the direct leaf similarity instead.
        for s_leaf in s_leaves:
            i = s_index[id(s_leaf)]
            s_sig = _leaf_signature(s_leaf)
            for t_leaf in t_leaves:
                scores[i, t_index[id(t_leaf)]] = signature_score[
                    (s_sig, _leaf_signature(t_leaf))
                ]

        for i, s_node in enumerate(s_nodes):
            row = scores[i]
            for j, t_node in enumerate(t_nodes):
                matrix.set(s_node, t_node, float(row[j]))
        ctx.stats.count("structural.pairs", len(matrix))
        return matrix


def _node_from_signature(signature) -> SchemaNode:
    type_name, min_occurs, max_occurs, kind, order, label = signature
    node = SchemaNode(
        label or "probe",
        kind=kind,
        type_name=type_name,
        min_occurs=min_occurs,
        max_occurs=max_occurs,
    )
    node.properties["order"] = order
    return node
