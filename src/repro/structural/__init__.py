"""Structural substrate: label-blind schema matchers.

The paper's *structural algorithm* baseline decides matches purely from
schema shape -- leaf data types, subtree leaf overlap, arity and depth --
with no access to labels.  Two implementations:

- :mod:`repro.structural.matcher` -- a Cupid-ssim-flavoured bottom-up
  matcher (the baseline used in the paper's experiments);
- :mod:`repro.structural.tree_edit` -- Zhang-Shasha tree edit distance,
  the Nierman-Jagadish [15] style structural similarity, offered as a
  second baseline.
"""

from repro.structural.matcher import StructuralConfig, StructuralMatcher
from repro.structural.tree_edit import (
    TreeEditConfig,
    TreeEditMatcher,
    tree_edit_distance,
    tree_edit_similarity,
)

__all__ = [
    "StructuralConfig",
    "StructuralMatcher",
    "TreeEditConfig",
    "TreeEditMatcher",
    "tree_edit_distance",
    "tree_edit_similarity",
]
