"""Zhang-Shasha tree edit distance.

The Nierman-Jagadish [15] structural-similarity baseline the paper's
related work cites: the minimum number of node insertions, deletions and
relabelings turning one ordered tree into the other, computed with the
classic Zhang-Shasha dynamic program (keyroots + forest distances).

Two cost models ship:

- ``structural`` (default) -- label-blind: relabeling two nodes is free
  when they agree on kind and (for leaves) have lattice-compatible
  types; this matches the spirit of the paper's structural baseline;
- ``label`` -- relabeling is free only for equal labels; the classic
  document-tree distance.

Besides the scalar distance, :class:`TreeEditMatcher` exposes the full
subtree-pair distance table the algorithm computes anyway as a score
matrix (``1 - dist / (size_i + size_j)``), so the tree-edit baseline
plugs into the same evaluation harness as every other matcher.

Complexity is O(n*m*depth_s*depth_t); fine for the paper's hand-sized
schemas, quadratic-ish for the 3753-node protein schema -- the harness
only runs this baseline on small and medium inputs (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.matching.base import Matcher
from repro.matching.result import ScoreMatrix
from repro.properties.types import type_strength
from repro.matching.classes import MatchStrength
from repro.xsd.model import SchemaNode, SchemaTree


@dataclass(frozen=True)
class TreeEditConfig:
    """Cost model for the edit distance."""

    insert_cost: float = 1.0
    delete_cost: float = 1.0
    #: "structural" or "label", or a callable (node, node) -> cost.
    relabel: object = "structural"

    def relabel_cost(self) -> Callable[[SchemaNode, SchemaNode], float]:
        if callable(self.relabel):
            return self.relabel
        if self.relabel == "structural":
            return _structural_relabel_cost
        if self.relabel == "label":
            return _label_relabel_cost
        raise ValueError(
            f"unknown relabel model {self.relabel!r}; "
            "expected 'structural', 'label' or a callable"
        )


def _structural_relabel_cost(left: SchemaNode, right: SchemaNode) -> float:
    if left.kind is not right.kind:
        return 1.0
    if left.is_leaf != right.is_leaf:
        return 1.0
    if left.is_leaf:
        strength = type_strength(left.type_name, right.type_name)
        if strength is MatchStrength.EXACT:
            return 0.0
        if strength is MatchStrength.RELAXED:
            return 0.5
        return 1.0
    return 0.0


def _label_relabel_cost(left: SchemaNode, right: SchemaNode) -> float:
    return 0.0 if left.name == right.name else 1.0


class _Annotated:
    """Postorder numbering, leftmost-leaf indices and keyroots of a tree."""

    def __init__(self, root: SchemaNode):
        self.nodes: list[SchemaNode] = list(root.iter_postorder())
        index_of = {id(node): i for i, node in enumerate(self.nodes)}
        self.lml = [0] * len(self.nodes)  # leftmost leaf descendant
        for i, node in enumerate(self.nodes):
            current = node
            while current.children:
                current = current.children[0]
            self.lml[i] = index_of[id(current)]
        # Keyroots: nodes that are not the leftmost child of their parent
        # (i.e. the highest node for each distinct lml value).
        highest = {}
        for i in range(len(self.nodes)):
            highest[self.lml[i]] = i
        self.keyroots = sorted(highest.values())


def _zhang_shasha(source_root, target_root, config: TreeEditConfig):
    """Run the DP; returns (treedist table, source nodes, target nodes)."""
    source = _Annotated(source_root)
    target = _Annotated(target_root)
    relabel = config.relabel_cost()
    insert_cost, delete_cost = config.insert_cost, config.delete_cost

    n, m = len(source.nodes), len(target.nodes)
    treedist = [[0.0] * m for _ in range(n)]

    for k1 in source.keyroots:
        for k2 in target.keyroots:
            _forest_distance(
                k1, k2, source, target, treedist,
                relabel, insert_cost, delete_cost,
            )
    return treedist, source.nodes, target.nodes


def _forest_distance(i, j, source, target, treedist,
                     relabel, insert_cost, delete_cost):
    li, lj = source.lml[i], target.lml[j]
    rows = i - li + 2
    cols = j - lj + 2
    fd = [[0.0] * cols for _ in range(rows)]
    for x in range(1, rows):
        fd[x][0] = fd[x - 1][0] + delete_cost
    for y in range(1, cols):
        fd[0][y] = fd[0][y - 1] + insert_cost
    for x in range(1, rows):
        node_x = x + li - 1
        for y in range(1, cols):
            node_y = y + lj - 1
            if source.lml[node_x] == li and target.lml[node_y] == lj:
                fd[x][y] = min(
                    fd[x - 1][y] + delete_cost,
                    fd[x][y - 1] + insert_cost,
                    fd[x - 1][y - 1]
                    + relabel(source.nodes[node_x], target.nodes[node_y]),
                )
                treedist[node_x][node_y] = fd[x][y]
            else:
                p = source.lml[node_x] - li
                q = target.lml[node_y] - lj
                fd[x][y] = min(
                    fd[x - 1][y] + delete_cost,
                    fd[x][y - 1] + insert_cost,
                    fd[p][q] + treedist[node_x][node_y],
                )


def tree_edit_distance(source: SchemaTree, target: SchemaTree,
                       config=None) -> float:
    """Zhang-Shasha edit distance between two schema trees."""
    config = config or TreeEditConfig()
    treedist, s_nodes, t_nodes = _zhang_shasha(
        source.root, target.root, config
    )
    return treedist[len(s_nodes) - 1][len(t_nodes) - 1]


def tree_edit_similarity(source: SchemaTree, target: SchemaTree,
                         config=None) -> float:
    """Distance normalized to a similarity: ``1 - d / (n + m)``."""
    distance = tree_edit_distance(source, target, config)
    return 1.0 - distance / (source.size + target.size)


class TreeEditMatcher(Matcher):
    """Tree-edit baseline exposing the full subtree-distance table.

    The Zhang-Shasha DP fills a distance for *every* (source subtree,
    target subtree) pair as a byproduct; each is normalized by the
    subtree sizes to yield a score matrix.
    """

    name = "tree-edit"

    def __init__(self, config=None):
        self.config = config or TreeEditConfig()

    def match_context(self, ctx) -> ScoreMatrix:
        matrix = ScoreMatrix(ctx.source, ctx.target)
        treedist, s_nodes, t_nodes = _zhang_shasha(
            ctx.source.root, ctx.target.root, self.config
        )
        s_sizes = [node.size for node in s_nodes]
        t_sizes = [node.size for node in t_nodes]
        for i, s_node in enumerate(s_nodes):
            for j, t_node in enumerate(t_nodes):
                denominator = s_sizes[i] + t_sizes[j]
                score = max(0.0, 1.0 - treedist[i][j] / denominator)
                matrix.set(s_node, t_node, score)
        ctx.stats.count("tree-edit.pairs", len(matrix))
        return matrix
